// SanitizerEngine: a compute-sanitizer-style hazard detector for the
// block-lockstep interpreter.
//
// When an engine is attached through sim::Interpreter::Options::sanitizer,
// execution is instrumented with shadow state:
//   - per shared-memory word: last writer (lane/warp), last written value,
//     barrier generation of the access, and an initialization bit;
//   - per warp: a barrier-arrival counter (Kepler's bar.sync counts *warp*
//     arrivals, so a warp whose live lanes branch around a __syncthreads
//     deadlocks the block on real hardware);
//   - per variable / local-array element / tracked global buffer element:
//     an initialization bit.
//
// Hazards are collected as structured HazardReports instead of thrown, so
// a faulty kernel yields a full report. SimErrors raised while executing a
// block (out-of-bounds, division by zero, ...) are downgraded to kSimFault
// reports and the rest of the grid keeps running — the graceful-degradation
// mode the production pipeline is gated on. See docs/sanitizer.md.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "sim/launch.hpp"
#include "support/source_location.hpp"

namespace cudanp::sim {

enum class HazardKind : std::uint8_t {
  /// Conflicting accesses to one shared-memory word (see RaceMode).
  kSharedRace,
  /// __syncthreads not reached by every warp with live threads.
  kBarrierDivergence,
  /// Read of a register / shared word / tracked global element that no
  /// thread has written.
  kUninitRead,
  /// __shfl from an inactive or out-of-range source lane.
  kShflHazard,
  /// A SimError (OOB access, div-by-zero, bad launch, ...) contained to
  /// the faulting block instead of aborting the run.
  kSimFault,
  /// A block exceeded its interpreted-statement budget
  /// (Interpreter::Options::max_steps_per_block); the launch is cancelled
  /// cooperatively and deterministically. See docs/robustness.md.
  kWatchdogTrip,
};

[[nodiscard]] const char* to_string(HazardKind k);

/// One detected hazard: what, where in the source, and which thread.
struct HazardReport {
  HazardKind kind = HazardKind::kSimFault;
  std::string kernel;
  Dim3 block;
  /// Flat thread id within the block; -1 when the hazard is block-wide.
  int thread = -1;
  SourceLoc loc;
  std::string message;

  [[nodiscard]] std::string str() const;
};

/// Control-flow signal thrown by SanitizerEngine::report when the error
/// limit is reached. Deliberately not derived from std::exception: it must
/// never escape Interpreter::run, which catches it and stops the grid.
struct HazardLimitReached {};

class SanitizerEngine {
 public:
  enum class RaceMode : std::uint8_t {
    /// Default: flag only what is a race even under the simulator's
    /// documented block-lockstep execution model — several lanes storing
    /// different values to the same shared word in one vector access.
    /// NP-transformed kernels must be clean here.
    kLockstep,
    /// compute-sanitizer racecheck style: any pair of same-barrier-interval
    /// accesses to one shared word from different warps with >= 1 write
    /// (and differing values for write-write) is flagged. Stricter than
    /// the lockstep model; the NP transform's master->slave handoffs rely
    /// on lockstep ordering and intentionally report under this mode.
    kPortable,
  };

  struct Options {
    /// Stop the run after this many distinct reports (the triggering
    /// report is kept); 0 = unlimited.
    std::size_t error_limit = 100;
    RaceMode race_mode = RaceMode::kLockstep;
    /// Keep only the first report per (kind, kernel, source location);
    /// repeats still count toward total_detected().
    bool dedupe = true;
  };

  SanitizerEngine() = default;
  explicit SanitizerEngine(Options opt) : opt_(opt) {}

  /// Records a hazard. Throws HazardLimitReached when the distinct-report
  /// count reaches the error limit.
  void report(HazardReport r);

  [[nodiscard]] const Options& options() const { return opt_; }
  [[nodiscard]] const std::vector<HazardReport>& reports() const {
    return reports_;
  }
  [[nodiscard]] std::size_t count(HazardKind k) const;
  /// Every observation, including deduplicated repeats.
  [[nodiscard]] std::size_t total_detected() const { return total_; }
  [[nodiscard]] bool limit_reached() const { return limit_reached_; }
  [[nodiscard]] bool clean() const { return reports_.empty(); }
  [[nodiscard]] std::string summary() const;
  void clear();

  // ---- launch-scoped global-buffer shadow state ----
  /// Marks a buffer as device scratch whose elements must be written by
  /// the kernel before being read (e.g. the extra buffers backing globally
  /// re-homed local arrays). Buffers never registered here are treated as
  /// host-initialized.
  void mark_buffer_uninitialized(BufferId id, std::size_t elems);
  /// Per-element init bitmap for a tracked buffer; nullptr when the buffer
  /// is treated as fully initialized.
  [[nodiscard]] std::vector<std::uint8_t>* buffer_shadow(BufferId id);

 private:
  Options opt_;
  std::vector<HazardReport> reports_;
  std::size_t total_ = 0;
  bool limit_reached_ = false;
  std::unordered_set<std::string> seen_;
  std::unordered_map<BufferId, std::vector<std::uint8_t>> buffer_shadows_;
};

}  // namespace cudanp::sim
