#include "sim/binder.hpp"

#include <mutex>
#include <unordered_map>

namespace cudanp::sim {

using namespace cudanp::ir;

namespace {

[[nodiscard]] std::int32_t geometry_code(const std::string& name) {
  if (name == "threadIdx.x") return kGeomThreadIdxX;
  if (name == "threadIdx.y") return kGeomThreadIdxY;
  if (name == "threadIdx.z") return kGeomThreadIdxZ;
  if (name == "blockIdx.x") return kGeomBlockIdxX;
  if (name == "blockIdx.y") return kGeomBlockIdxY;
  if (name == "blockIdx.z") return kGeomBlockIdxZ;
  if (name == "blockDim.x") return kGeomBlockDimX;
  if (name == "blockDim.y") return kGeomBlockDimY;
  if (name == "blockDim.z") return kGeomBlockDimZ;
  if (name == "gridDim.x") return kGeomGridDimX;
  if (name == "gridDim.y") return kGeomGridDimY;
  if (name == "gridDim.z") return kGeomGridDimZ;
  return -1;
}

}  // namespace

Builtin resolve_builtin(const std::string& f) {
  if (f == "__syncthreads") return Builtin::kSyncthreads;
  if (f == "__shfl") return Builtin::kShfl;
  if (f == "__shfl_up") return Builtin::kShflUp;
  if (f == "__shfl_down") return Builtin::kShflDown;
  if (f == "__shfl_xor") return Builtin::kShflXor;
  if (f == "sqrtf" || f == "sqrt") return Builtin::kSqrt;
  if (f == "fabsf" || f == "fabs") return Builtin::kFabs;
  if (f == "expf" || f == "exp" || f == "__expf") return Builtin::kExp;
  if (f == "logf" || f == "log" || f == "__logf") return Builtin::kLog;
  if (f == "sinf" || f == "__sinf") return Builtin::kSin;
  if (f == "cosf" || f == "__cosf") return Builtin::kCos;
  if (f == "floorf") return Builtin::kFloor;
  if (f == "rsqrtf") return Builtin::kRsqrt;
  if (f == "abs") return Builtin::kAbs;
  if (f == "min") return Builtin::kMin;
  if (f == "max") return Builtin::kMax;
  if (f == "fminf") return Builtin::kFminf;
  if (f == "fmaxf") return Builtin::kFmaxf;
  if (f == "powf") return Builtin::kPowf;
  return Builtin::kNotBuiltin;
}

namespace {

/// Builds the name -> slot table and annotates the AST. Declarations are
/// name-keyed exactly like the old per-block unordered_map: re-declaring
/// a name (loop bodies, param shadows) resolves to the same slot.
class Binder {
 public:
  explicit Binder(const Kernel& kernel) {
    out_ = std::make_shared<BoundKernel>();
    out_->kernel = &kernel;
    for (std::size_t i = 0; i < kernel.params.size(); ++i) {
      SlotDecl sd;
      sd.name = kernel.params[i].name;
      sd.is_param = true;
      sd.param_index = i;
      by_name_.emplace(sd.name, static_cast<std::int32_t>(out_->slots.size()));
      out_->slots.push_back(std::move(sd));
    }
    // First pass: collect every declared name so forward references bind
    // to a slot (a runtime liveness bit preserves use-before-declare
    // errors). Second pass: annotate expressions.
    collect_decls(*kernel.body);
    annotate_stmt(*kernel.body);
  }

  [[nodiscard]] std::shared_ptr<const BoundKernel> take() {
    return std::move(out_);
  }

 private:
  std::int32_t slot_for_decl(const std::string& name) {
    auto [it, inserted] =
        by_name_.emplace(name, static_cast<std::int32_t>(out_->slots.size()));
    if (inserted) {
      SlotDecl sd;
      sd.name = name;
      out_->slots.push_back(std::move(sd));
    }
    return it->second;
  }

  void collect_decls(const Stmt& s) {
    for_each_stmt(s, [&](const Stmt& st) {
      if (st.kind() != StmtKind::kDecl) return;
      const auto& d = static_cast<const DeclStmt&>(st);
      d.sim_slot = slot_for_decl(d.name);
      if (d.type.space == AddrSpace::kShared)
        out_->shared_words_bound +=
            static_cast<std::uint64_t>(d.type.element_count());
    });
  }

  void annotate_stmt(const Stmt& s) {
    for_each_stmt(s, [&](const Stmt& st) {
      switch (st.kind()) {
        case StmtKind::kDecl: {
          const auto& d = static_cast<const DeclStmt&>(st);
          if (d.init) annotate_expr(*d.init);
          for (const auto& e : d.init_list) annotate_expr(*e);
          break;
        }
        case StmtKind::kAssign: {
          const auto& a = static_cast<const AssignStmt&>(st);
          annotate_expr(*a.lhs);
          annotate_expr(*a.rhs);
          break;
        }
        case StmtKind::kIf:
          annotate_expr(*static_cast<const IfStmt&>(st).cond);
          break;
        case StmtKind::kFor: {
          const auto& f = static_cast<const ForStmt&>(st);
          if (f.cond) annotate_expr(*f.cond);
          break;
        }
        case StmtKind::kWhile:
          annotate_expr(*static_cast<const WhileStmt&>(st).cond);
          break;
        case StmtKind::kExpr:
          annotate_expr(*static_cast<const ExprStmt&>(st).expr);
          break;
        default:
          break;
      }
    });
  }

  void annotate_expr(const Expr& e) {
    for_each_expr(e, [&](const Expr& x) {
      switch (x.kind()) {
        case ExprKind::kVarRef: {
          const auto& v = static_cast<const VarRef&>(x);
          // Geometry names take precedence over declared variables, like
          // the old is_builtin_geometry check before the map lookup.
          std::int32_t g = geometry_code(v.name);
          if (g >= 0) {
            v.sim_slot = kSlotGeomBase - g;
            return;
          }
          auto it = by_name_.find(v.name);
          v.sim_slot = it == by_name_.end() ? kSlotUndeclared : it->second;
          return;
        }
        case ExprKind::kCall: {
          const auto& c = static_cast<const CallExpr&>(x);
          c.sim_builtin = static_cast<std::int16_t>(resolve_builtin(c.callee));
          return;
        }
        default:
          return;
      }
    });
  }

  std::shared_ptr<BoundKernel> out_;
  std::unordered_map<std::string, std::int32_t> by_name_;
};

std::mutex g_bind_mutex;

}  // namespace

std::shared_ptr<const BoundKernel> bind_kernel(const Kernel& kernel) {
  std::lock_guard<std::mutex> lock(g_bind_mutex);
  if (kernel.sim_binding)
    return std::static_pointer_cast<const BoundKernel>(kernel.sim_binding);
  Binder binder(kernel);
  auto bound = binder.take();
  kernel.sim_binding = bound;
  return bound;
}

}  // namespace cudanp::sim
