// Bytecode VM: the fast kernel engine.
//
// Executes the flat instruction stream produced by sim/bytecode.cpp with
// a dispatch loop over SoA lane state — virtual registers are contiguous
// per-lane vectors, masks live on a preallocated stack sized by the
// lowering — so a launch pays no per-node heap allocation and no
// recursion. All semantics (charges, watchdog, sanitizer, errors) come
// from exec::BlockCore, shared with the AST walker.
//
// Implementation detail of sim/; include only from the interpreter and
// tests.
#pragma once

#include <cstdint>

#include "sim/binder.hpp"
#include "sim/bytecode.hpp"
#include "sim/exec_core.hpp"
#include "sim/interpreter.hpp"
#include "sim/launch.hpp"
#include "sim/memory.hpp"

namespace cudanp::sim::vm {

/// Runs one block of a launch over the lowered program. Equivalent to
/// constructing the AST walker on the same BlockCore arguments and
/// running it — same stats, same hazard stream, same errors.
[[nodiscard]] KernelStats run_block(const bytecode::Program& program,
                                    const DeviceSpec& spec, DeviceMemory& mem,
                                    const Interpreter::Options& opt,
                                    const BoundKernel& bound,
                                    const LaunchConfig& cfg, Dim3 block_idx,
                                    int resident_blocks,
                                    exec::BlockSanitizer* san,
                                    std::int64_t flat_block,
                                    std::int64_t max_steps);

}  // namespace cudanp::sim::vm
