// ExecPool: the persistent worker pool behind the parallel grid scheduler.
//
// Thread blocks are independent by construction (the paper's benchmarks,
// and everything CUDA-NP emits, communicate only through __syncthreads
// within a block), so the simulator's grid loop parallelizes across host
// cores. The pool is process-wide and lazy: workers are spawned on first
// demand and reused across launches, so autotuner sweeps and bench runs
// pay thread-creation cost once.
//
// parallel_for distributes indices dynamically (atomic counter), which is
// deliberately order-agnostic: callers that need determinism write results
// to per-index storage and merge in index order afterwards — see
// Interpreter::run's ordered KernelStats / hazard-report merge.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace cudanp::sim {

class ExecPool {
 public:
  /// The process-wide pool. Safe to call from any thread.
  [[nodiscard]] static ExecPool& instance();

  /// Runs fn(0), ..., fn(n-1), using at most `jobs` threads including the
  /// calling thread, and returns when every index has completed. Worker
  /// threads are grown on demand (oversubscription beyond the hardware
  /// core count is allowed, capped at kMaxWorkers). `fn` must not throw;
  /// callers capture failures per index. One launch runs at a time;
  /// concurrent callers serialize.
  ///
  /// `cancel` is an optional cooperative cancellation token: once it
  /// reads true, no further indices are claimed (indices already being
  /// executed run to completion). Which indices were skipped depends on
  /// scheduling, so callers needing determinism must reconcile skipped
  /// indices afterwards — see the watchdog merge in Interpreter::run,
  /// which re-runs cancelled blocks that precede the first trip inline.
  void parallel_for(std::int64_t n, int jobs,
                    const std::function<void(std::int64_t)>& fn,
                    const std::atomic<bool>* cancel = nullptr);

  /// Hard cap on pool threads (plus the caller), a guard against
  /// pathological --jobs values.
  static constexpr int kMaxWorkers = 64;

  /// Resolves a jobs request: explicit > 0 wins, else the CUDANP_JOBS
  /// environment variable, else hardware_concurrency (min 1).
  [[nodiscard]] static int resolve_jobs(int requested);

  ~ExecPool();
  ExecPool(const ExecPool&) = delete;
  ExecPool& operator=(const ExecPool&) = delete;

 private:
  ExecPool() = default;
  void worker_loop();
  void ensure_workers(int count);  // requires mu_ held

  std::mutex launch_mu_;  // serializes parallel_for calls
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::vector<std::thread> workers_;
  bool shutdown_ = false;

  // State of the current launch, guarded by mu_ except task_next_.
  std::uint64_t task_gen_ = 0;
  const std::function<void(std::int64_t)>* task_fn_ = nullptr;
  const std::atomic<bool>* task_cancel_ = nullptr;
  std::int64_t task_n_ = 0;
  int task_slots_ = 0;  // worker participation slots remaining
  int task_active_ = 0; // workers currently executing indices
  std::atomic<std::int64_t> task_next_{0};
};

}  // namespace cudanp::sim
