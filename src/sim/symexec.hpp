// Symbolic evaluator over ir:: kernels (the proof engine behind
// np/certifier.hpp).
//
// The executor runs a kernel in the same block-lockstep vector model as
// the interpreter, but with *symbolic* float data: geometry and int
// scalar parameters are concrete (so loop bounds, indices and masks
// fold), while float buffer elements and float scalar parameters are
// opaque input leaves. Every arithmetic step builds a hash-consed
// expression node whose constant folding replicates
// exec::BlockCore::apply_binop bit-for-bit (float ops round through f32,
// int64 exact), so a fully-concrete symbolic run computes exactly what
// the interpreter would.
//
// The result is, per output buffer element, an expression DAG over the
// input leaves. np::Certifier normalizes those DAGs (constant folding,
// sub -> add/neg, AC-flattening and operand sorting of +,*,min,max
// chains, select(x<y,x,y) -> min/max) and compares baseline vs variant:
// identical raw DAGs prove exact equivalence; identical normalized DAGs
// prove equivalence modulo reassociation/commutation, which is the right
// contract for NP-transformed float reductions and scans.
//
// Anything outside the supported envelope (symbolic loop bounds,
// symbolic store indices, barriers or shared-memory stores under
// symbolically divergent branches, cross-block data flow, budget
// exhaustion) aborts the run with a reason instead of guessing — the
// certifier maps that to kInconclusive and the empirical
// sanitize/cross-check legs keep the final say. Global stores under a
// symbolically divergent branch are supported by folding the branch
// predicate into the stored value (select(pred, new, old)).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "ir/kernel.hpp"
#include "sim/launch.hpp"

namespace cudanp::sim {

enum class SymKind : std::uint8_t {
  kConstInt,
  kConstFloat,
  /// Symbolic input leaf: element `elem` of buffer argument `param`, or
  /// the scalar argument `param` itself when elem == -1.
  kInput,
  kBin,    // ir::BinOp over kids[0], kids[1]
  kUnary,  // ir::UnOp over kids[0]
  kCall,   // SymFn over kids
  kCast,   // to ScalarType (op field) of kids[0]
  kSelect, // kids = {cond, then, else}
  kGather, // kids = {index, cell0, cell1, ...}: load at a symbolic index
  kNary,   // normalized AC chain (SymNaryOp), operands sorted by id
};

/// Builtin math functions a symbolic call node can carry (mirrors the
/// interpreter's Builtin set minus barriers/shfl, which the executor
/// resolves during execution and never represents as nodes).
enum class SymFn : std::uint8_t {
  kSqrt, kFabs, kExp, kLog, kSin, kCos, kFloor, kRsqrt, kAbs,
  kMin, kMax, kFminf, kFmaxf, kPowf,
};

/// AC operators the normalizer flattens into kNary chains.
enum class SymNaryOp : std::uint8_t { kAdd, kMul, kMin, kMax };

struct SymNode {
  SymKind kind = SymKind::kConstInt;
  ir::ScalarType type = ir::ScalarType::kInt;
  /// BinOp / UnOp / SymFn / SymNaryOp / target ScalarType, by kind.
  std::uint8_t op = 0;
  std::int32_t param = -1;   // kInput: argument index
  std::int64_t ival = 0;     // kConstInt value / kInput element index
  double fval = 0.0;         // kConstFloat value
  std::vector<std::uint32_t> kids;
};

/// Raised by constant folding when the folded operation would make the
/// interpreter throw (integer division by zero); the executor turns it
/// into an aborted result with fault = true.
struct SymFault {
  std::string message;
};

/// Hash-consing arena. Node ids are indices; structural equality of two
/// expressions built in the *same* arena is id equality. Builders fold
/// eagerly when every operand is constant, replicating the interpreter's
/// exact semantics (f32 rounding on float ops and math calls).
class SymArena {
 public:
  static constexpr std::uint32_t kInvalid = 0xffffffffu;

  [[nodiscard]] std::uint32_t cint(std::int64_t v);
  /// Constant float, rounded through f32 like every interpreter value.
  [[nodiscard]] std::uint32_t cfloat(double v);
  [[nodiscard]] std::uint32_t input(std::int32_t param, std::int64_t elem,
                                    ir::ScalarType type);
  [[nodiscard]] std::uint32_t bin(ir::BinOp op, std::uint32_t a,
                                  std::uint32_t b);
  [[nodiscard]] std::uint32_t un(ir::UnOp op, std::uint32_t a);
  [[nodiscard]] std::uint32_t call(SymFn fn, std::vector<std::uint32_t> kids);
  [[nodiscard]] std::uint32_t cast(ir::ScalarType to, std::uint32_t a);
  [[nodiscard]] std::uint32_t select(std::uint32_t c, std::uint32_t a,
                                     std::uint32_t b);
  [[nodiscard]] std::uint32_t gather(std::uint32_t idx,
                                     const std::vector<std::uint32_t>& cells,
                                     ir::ScalarType type);
  /// Interns an already-normalized n-ary chain (operands must be sorted).
  [[nodiscard]] std::uint32_t nary(SymNaryOp op, ir::ScalarType type,
                                   std::vector<std::uint32_t> kids);

  [[nodiscard]] const SymNode& node(std::uint32_t id) const {
    return nodes_[id];
  }
  [[nodiscard]] std::size_t size() const { return nodes_.size(); }

  /// True when the node is a constant; fills `out` with its Value.
  [[nodiscard]] bool constant(std::uint32_t id, Value* out) const;

  /// Canonical form: constants folded, sub/neg rewritten into add/mul
  /// chains, +,*,min,max flattened into sorted kNary nodes, comparisons
  /// oriented, select-over-comparison rewritten to min/max. Memoized.
  [[nodiscard]] std::uint32_t normalize(std::uint32_t id);

  /// Renders an expression for diagnostics (depth-capped).
  [[nodiscard]] std::string str(std::uint32_t id, int max_depth = 6) const;

 private:
  [[nodiscard]] std::uint32_t intern(SymNode&& n);
  [[nodiscard]] std::uint32_t fold_bin(ir::BinOp op, Value a, Value b);
  [[nodiscard]] std::uint32_t make_nary(SymNaryOp op, ir::ScalarType type,
                                        std::vector<std::uint32_t> operands);

  std::vector<SymNode> nodes_;
  std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> index_;
  std::unordered_map<std::uint32_t, std::uint32_t> norm_memo_;
};

/// How one kernel argument is modelled symbolically.
struct SymArg {
  enum class Kind : std::uint8_t {
    kScalarConcrete,  ///< int scalar pinned to a concrete value
    kScalarSymbolic,  ///< float scalar: one input leaf
    kBufferSymbolic,  ///< float buffer of `elems` symbolic input leaves
    kBufferConcrete,  ///< int buffer with the concrete contents of `ints`
    kBufferScratch,   ///< uninitialized device scratch (variant re-homing)
  };
  Kind kind = Kind::kScalarConcrete;
  ir::ScalarType type = ir::ScalarType::kInt;
  Value scalar{};           // kScalarConcrete
  std::int64_t elems = 0;   // buffer kinds
  /// kBufferConcrete: the elems concrete values (int data steers control
  /// flow and indexing, so it is pinned, not abstracted).
  std::vector<std::int32_t> ints;
};

/// Deterministic float assignment for input leaf (param, elem) under a
/// counterexample seed (elem == -1 for scalar params). Counterexample
/// replays fill concrete workloads from the same function, so symbolic
/// evaluation and interpreter execution see identical inputs.
[[nodiscard]] float sym_float_input(std::uint64_t seed, int param,
                                    std::int64_t elem);

struct SymExecOptions {
  /// Statement budget across the whole grid; exhausted -> aborted run.
  std::int64_t max_steps = 4'000'000;
  /// Largest array a load at a symbolic index may be expanded over
  /// (kGather snapshot size); larger -> aborted run.
  std::int64_t max_gather_cells = 4096;
  /// Arena node budget: a run whose expression DAG outgrows this aborts
  /// (keeps certification time and memory bounded on huge workloads).
  std::int64_t max_nodes = 8'000'000;
  int warp_size = 32;
};

/// A shared-memory (or same-block global) access pair that would be a
/// data race on real hardware: cross-warp, same barrier epoch. The
/// simulator's documented lockstep model gives these accesses a
/// deterministic order — NP master/slave handoffs rely on it and
/// intentionally report under SanitizerEngine::RaceMode::kPortable — so
/// these are advisory notes, not correctness verdicts.
struct SymRace {
  std::string message;
};

struct SymExecResult {
  /// True when the kernel was executed to completion within the model.
  bool ok = false;
  /// Set with ok == false when the abort is a *deterministic fault* the
  /// interpreter would also raise on any input (OOB access, div by
  /// zero), as opposed to an unsupported-construct bailout.
  bool fault = false;
  std::string reason;
  /// Final symbolic contents per buffer argument (empty vector for
  /// scalar args), indexed like the `args` input.
  std::vector<std::vector<std::uint32_t>> buffers;
  std::vector<SymRace> races;
  std::int64_t steps = 0;
};

/// Executes `kernel` over the whole grid in lockstep-vector order.
/// Blocks run sequentially; a read of a global element written by a
/// *different* block aborts (cross-block ordering is undefined on real
/// hardware and uncertifiable).
[[nodiscard]] SymExecResult sym_execute(const ir::Kernel& kernel, Dim3 grid,
                                        Dim3 block,
                                        const std::vector<SymArg>& args,
                                        SymArena& arena,
                                        const SymExecOptions& opt = {});

/// Evaluates an expression under a concrete assignment of input leaves
/// (float leaves from sym_float_input(seed, ...)). Mirrors interpreter
/// arithmetic exactly. Returns false when evaluation faults (div by
/// zero, gather index out of range).
class SymEvaluator {
 public:
  SymEvaluator(const SymArena& arena, std::uint64_t seed)
      : arena_(arena), seed_(seed) {}
  [[nodiscard]] bool eval(std::uint32_t id, Value* out);

 private:
  const SymArena& arena_;
  std::uint64_t seed_;
  std::unordered_map<std::uint32_t, Value> memo_;
};

}  // namespace cudanp::sim
