// Lowering from the slot-bound kernel AST to the flat bytecode the VM
// executes (sim/vm.cpp). The pass mirrors the AST walker's evaluation
// order instruction-for-instruction: every charge, watchdog step, mask
// operation and error site is emitted at the exact point the recursive
// walk would reach it, so the two engines are bit-identical by
// construction. See sim/bytecode.hpp for the instruction set.

#include "sim/bytecode.hpp"

#include <algorithm>
#include <string>
#include <unordered_map>
#include <utility>

#include "ir/kernel.hpp"

namespace cudanp::sim::bytecode {

using namespace cudanp::ir;

namespace {

/// Thrown to abandon lowering; lower() turns it into a null program and
/// the launch transparently runs the AST engine instead.
struct Decline {};

/// Static classification of one frame slot, folded from the parameter
/// list and every declaration binding to it.
struct SlotInfo {
  enum class Kind : std::uint8_t { kNone, kBufferParam, kUniformParam, kDecl };
  Kind kind = Kind::kNone;
  Type type;  // meaningful for kDecl
};

class Lowerer {
 public:
  explicit Lowerer(const BoundKernel& bound) : bound_(bound) {}

  std::shared_ptr<const Program> run() {
    const Kernel& k = *bound_.kernel;
    nparams_ = k.params.size();
    info_.resize(bound_.num_slots());
    for (std::size_t i = 0; i < bound_.slots.size(); ++i) {
      if (!bound_.slots[i].is_param) continue;
      const Param& p = k.params[bound_.slots[i].param_index];
      info_[i].kind = p.type.is_pointer ? SlotInfo::Kind::kBufferParam
                                        : SlotInfo::Kind::kUniformParam;
      info_[i].type = p.type;
    }
    scan(*k.body);
    lower_block(*k.body);
    emit(Op::kHalt);
    prog_.num_regs = max_regs_;
    prog_.max_mask_depth = max_depth_;
    prog_.max_loop_depth = max_loops_;
    return std::make_shared<const Program>(std::move(prog_));
  }

 private:
  // ---------------- static slot typing ----------------
  /// Collects every declaration and folds its type into the slot table;
  /// declines shapes whose static typing is ambiguous (param-shadowing
  /// slots, conflicting per-slot types, shared scalars) or that the AST
  /// only diagnoses dynamically.
  void scan(const Stmt& s) {
    switch (s.kind()) {
      case StmtKind::kBlock:
        for (const auto& c : static_cast<const Block&>(s).stmts) scan(*c);
        return;
      case StmtKind::kDecl: {
        const auto& d = static_cast<const DeclStmt&>(s);
        if (d.sim_slot < 0) throw Decline{};
        if (static_cast<std::size_t>(d.sim_slot) < nparams_) throw Decline{};
        if (d.type.space == AddrSpace::kShared && !d.type.is_array())
          throw Decline{};
        SlotInfo& si = info_[static_cast<std::size_t>(d.sim_slot)];
        if (si.kind == SlotInfo::Kind::kDecl && !(si.type == d.type))
          throw Decline{};
        si.kind = SlotInfo::Kind::kDecl;
        si.type = d.type;
        prog_.decls.push_back(&d);
        decl_index_.emplace(&d, static_cast<std::int64_t>(prog_.decls.size()) -
                                    1);
        return;
      }
      case StmtKind::kIf: {
        const auto& i = static_cast<const IfStmt&>(s);
        scan(*i.then_body);
        if (i.else_body) scan(*i.else_body);
        return;
      }
      case StmtKind::kFor: {
        const auto& f = static_cast<const ForStmt&>(s);
        if (f.init) scan(*f.init);
        scan(*f.body);
        if (f.inc) scan(*f.inc);
        return;
      }
      case StmtKind::kWhile:
        scan(*static_cast<const WhileStmt&>(s).body);
        return;
      default:
        return;
    }
  }

  [[nodiscard]] const SlotInfo* info(std::int32_t slot) const {
    if (slot < 0 || static_cast<std::size_t>(slot) >= info_.size())
      return nullptr;
    return &info_[static_cast<std::size_t>(slot)];
  }

  // ---------------- emission ----------------
  std::size_t emit(Instr in) {
    prog_.code.push_back(std::move(in));
    return prog_.code.size() - 1;
  }
  std::size_t emit(Op op) {
    Instr in;
    in.op = op;
    return emit(std::move(in));
  }
  std::size_t emit_loc(Op op, SourceLoc loc) {
    Instr in;
    in.op = op;
    in.loc = loc;
    return emit(std::move(in));
  }
  /// Precomposed SimError, positioned where the AST walk would throw.
  void emit_trap(std::string msg) {
    Instr in;
    in.op = Op::kTrap;
    in.name = intern(std::move(msg));
    emit(std::move(in));
  }
  void patch(std::size_t i, std::size_t target) {
    prog_.code[i].target = static_cast<std::int32_t>(target);
  }

  std::int32_t intern(std::string s) {
    auto [it, fresh] = name_ids_.try_emplace(
        s, static_cast<std::int32_t>(prog_.names.size()));
    if (fresh) prog_.names.push_back(std::move(s));
    return it->second;
  }

  std::int32_t alloc_reg() {
    std::int32_t r = next_reg_++;
    max_regs_ = std::max(max_regs_, next_reg_);
    return r;
  }

  void enter_masks(int n) {
    depth_ += n;
    max_depth_ = std::max(max_depth_, depth_);
  }
  void leave_masks(int n) { depth_ -= n; }

  // ---------------- statements ----------------
  /// Every statement is preceded by a kGuard that clears returned lanes
  /// and skips the rest of the block when the mask empties — the
  /// exec_block loop of the AST walker.
  void lower_block(const Block& b) {
    std::vector<std::size_t> guards;
    guards.reserve(b.stmts.size());
    for (const auto& s : b.stmts) {
      guards.push_back(emit(Op::kGuard));
      lower_stmt(*s);
    }
    for (std::size_t g : guards) patch(g, prog_.code.size());
  }

  void lower_stmt(const Stmt& s) {
    // Virtual registers never live across statements, so the allocator
    // resets here; num_regs is the per-statement peak.
    next_reg_ = 0;
    emit_loc(Op::kStep, s.loc());
    switch (s.kind()) {
      case StmtKind::kBlock:
        lower_block(static_cast<const Block&>(s));
        return;
      case StmtKind::kDecl:
        lower_decl(static_cast<const DeclStmt&>(s));
        return;
      case StmtKind::kAssign:
        emit(Op::kLeafBegin);
        lower_assign(static_cast<const AssignStmt&>(s));
        emit(Op::kLeafEnd);
        return;
      case StmtKind::kIf:
        lower_if(static_cast<const IfStmt&>(s));
        return;
      case StmtKind::kFor:
        lower_for(static_cast<const ForStmt&>(s));
        return;
      case StmtKind::kWhile:
        lower_while(static_cast<const WhileStmt&>(s));
        return;
      case StmtKind::kExpr:
        emit(Op::kLeafBegin);
        (void)lower_expr(*static_cast<const ExprStmt&>(s).expr);
        emit(Op::kLeafEnd);
        return;
      case StmtKind::kReturn:
        emit(Op::kReturn);
        return;
      case StmtKind::kBreak:
      case StmtKind::kContinue:
        emit_trap(
            "break/continue are not supported by the simulator; use a "
            "guarding if (paper Sec. 3.7 padding uses `if (i < n)`)");
        return;
    }
  }

  void lower_decl(const DeclStmt& d) {
    emit(Op::kLeafBegin);
    const std::int64_t didx = decl_index_.at(&d);
    {
      Instr in;
      in.op = Op::kDeclare;
      in.imm = didx;
      emit(std::move(in));
    }
    if (!d.init_list.empty()) {
      if (static_cast<std::int64_t>(d.init_list.size()) >
          d.type.element_count()) {
        emit_trap("too many initializers for '" + d.name + "'");
        return;  // unreachable past the trap
      }
      // Brace initializer: constant contents, lane-0 semantics.
      emit(Op::kMaskLane0);
      enter_masks(1);
      for (std::size_t e = 0; e < d.init_list.size(); ++e) {
        Operand v = lower_expr(*d.init_list[e]);
        Instr in;
        in.op = Op::kDeclFill;
        in.imm = didx;
        in.dst = static_cast<std::int32_t>(e);
        in.a = v;
        emit(std::move(in));
      }
      leave_masks(1);
      emit(Op::kMaskPop);
      {
        Instr in;
        in.op = Op::kDeclShadow;
        in.imm = didx;
        emit(std::move(in));
      }
      emit(Op::kLeafEnd);
      return;
    }
    if (d.init) {
      if (d.type.is_array()) {
        emit_trap("array initializers are not supported at " +
                  d.loc().str());
        return;
      }
      Operand v = lower_expr(*d.init);
      Instr in;
      in.op = Op::kDeclInit;
      in.imm = didx;
      in.a = v;
      emit(std::move(in));
    }
    emit(Op::kLeafEnd);
  }

  void lower_assign(const AssignStmt& a) {
    Operand rhs = lower_expr(*a.rhs);
    if (a.op != AssignOp::kAssign) {
      // Compound assignment reads the target first (full re-evaluation,
      // charges included, exactly like the AST's double eval).
      Operand old = lower_expr(*a.lhs);
      BinOp op = a.op == AssignOp::kAdd   ? BinOp::kAdd
                 : a.op == AssignOp::kSub ? BinOp::kSub
                 : a.op == AssignOp::kMul ? BinOp::kMul
                                          : BinOp::kDiv;
      Instr in;
      in.op = Op::kCompound;
      in.aux = static_cast<std::uint8_t>(op);
      in.dst = alloc_reg();
      in.a = old;
      in.b = rhs;
      in.loc = a.loc();
      rhs = Operand::reg(in.dst);
      emit(std::move(in));
    }
    if (a.lhs->kind() == ExprKind::kVarRef) {
      const auto& v = static_cast<const VarRef&>(*a.lhs);
      Instr in;
      in.op = Op::kStoreVar;
      in.slot = v.sim_slot;
      in.name = intern(v.name);
      in.a = rhs;
      in.loc = v.loc();
      emit(std::move(in));
      return;
    }
    if (a.lhs->kind() == ExprKind::kArrayIndex) {
      (void)lower_index(static_cast<const ArrayIndex&>(*a.lhs), &rhs);
      return;
    }
    emit_trap("invalid assignment target at " + a.loc().str());
  }

  void lower_if(const IfStmt& i) {
    emit(Op::kLeafBegin);
    Operand c = lower_expr(*i.cond);
    emit_charge();
    emit(Op::kLeafEnd);
    const bool has_else = i.else_body != nullptr;
    std::size_t split;
    {
      Instr in;
      in.op = Op::kIfSplit;
      in.aux = has_else ? 1 : 0;
      in.a = c;
      split = emit(std::move(in));
    }
    if (has_else) {
      enter_masks(2);
      lower_block(*i.then_body);
      leave_masks(1);
      std::size_t elsei = emit(Op::kIfElse);
      patch(split, elsei);
      lower_block(*i.else_body);
      std::size_t endi = emit(Op::kIfEnd);
      patch(elsei, endi + 1);
      leave_masks(1);
    } else {
      enter_masks(1);
      lower_block(*i.then_body);
      std::size_t endi = emit(Op::kIfEnd);
      patch(split, endi);  // empty then-mask still pops at kIfEnd
      leave_masks(1);
    }
  }

  void lower_for(const ForStmt& f) {
    if (f.init) lower_stmt(*f.init);
    enter_masks(1);
    ++loops_;
    max_loops_ = std::max(max_loops_, loops_);
    emit_loc(Op::kLoopEnter, f.loc());
    const std::size_t head = prog_.code.size();
    emit_loc(Op::kLoopBackedge, f.loc());
    if (f.cond) {
      emit(Op::kLeafBegin);
      Operand c = lower_expr(*f.cond);
      emit_charge();
      emit(Op::kLeafEnd);
      Instr in;
      in.op = Op::kMaskAnd;
      in.a = c;
      emit(std::move(in));
    }
    std::size_t check;
    {
      Instr in;
      in.op = Op::kLoopCheck;
      in.aux = 0;  // for-loop valve message
      in.loc = f.loc();
      check = emit(std::move(in));
    }
    lower_block(*f.body);
    std::size_t latch = emit(Op::kLoopLatchFor);
    if (f.inc) lower_stmt(*f.inc);
    {
      Instr in;
      in.op = Op::kJump;
      in.target = static_cast<std::int32_t>(head);
      emit(std::move(in));
    }
    const std::size_t exit = prog_.code.size();
    patch(check, exit);
    patch(latch, exit);
    emit(Op::kLoopExit);
    --loops_;
    leave_masks(1);
  }

  void lower_while(const WhileStmt& wl) {
    enter_masks(1);
    ++loops_;
    max_loops_ = std::max(max_loops_, loops_);
    emit_loc(Op::kLoopEnter, wl.loc());
    const std::size_t head = prog_.code.size();
    emit_loc(Op::kLoopBackedge, wl.loc());
    emit(Op::kLeafBegin);
    Operand c = lower_expr(*wl.cond);
    emit_charge();
    emit(Op::kLeafEnd);
    {
      Instr in;
      in.op = Op::kMaskAnd;
      in.a = c;
      emit(std::move(in));
    }
    std::size_t check;
    {
      Instr in;
      in.op = Op::kLoopCheck;
      in.aux = 1;  // while-loop valve message
      in.loc = wl.loc();
      check = emit(std::move(in));
    }
    lower_block(*wl.body);
    // The AST's while latch clears returned lanes and loops back to the
    // condition unconditionally (one extra back-edge on a possibly-empty
    // mask); kLoopCheck exits there.
    emit(Op::kClearReturned);
    {
      Instr in;
      in.op = Op::kJump;
      in.target = static_cast<std::int32_t>(head);
      emit(std::move(in));
    }
    patch(check, prog_.code.size());
    emit(Op::kLoopExit);
    --loops_;
    leave_masks(1);
  }

  void emit_charge() {
    Instr in;
    in.op = Op::kCharge;
    in.aux = static_cast<std::uint8_t>(ChargeKind::kAlu);
    emit(std::move(in));
  }

  // ---------------- expressions ----------------
  Operand lower_expr(const Expr& e) {
    switch (e.kind()) {
      case ExprKind::kIntLit:
        return Operand::immediate(
            Value::of_int(static_cast<const IntLit&>(e).value));
      case ExprKind::kFloatLit:
        return Operand::immediate(
            Value::of_float(static_cast<const FloatLit&>(e).value).to_f32());
      case ExprKind::kVarRef:
        return lower_varref(static_cast<const VarRef&>(e));
      case ExprKind::kArrayIndex:
        return lower_index(static_cast<const ArrayIndex&>(e), nullptr);
      case ExprKind::kBinary: {
        const auto& b = static_cast<const BinaryExpr&>(e);
        Operand lhs = lower_expr(*b.lhs);
        Operand rhs = lower_expr(*b.rhs);
        Instr in;
        in.op = Op::kBin;
        in.aux = static_cast<std::uint8_t>(b.op);
        in.dst = alloc_reg();
        in.a = lhs;
        in.b = rhs;
        in.loc = b.loc();
        Operand r = Operand::reg(in.dst);
        emit(std::move(in));
        return r;
      }
      case ExprKind::kUnary: {
        const auto& u = static_cast<const UnaryExpr&>(e);
        Operand a = lower_expr(*u.operand);
        Instr in;
        in.op = Op::kUn;
        in.aux = static_cast<std::uint8_t>(u.op);
        in.dst = alloc_reg();
        in.a = a;
        Operand r = Operand::reg(in.dst);
        emit(std::move(in));
        return r;
      }
      case ExprKind::kCall:
        return lower_call(static_cast<const CallExpr&>(e));
      case ExprKind::kTernary: {
        const auto& t = static_cast<const TernaryExpr&>(e);
        Operand c = lower_expr(*t.cond);
        Operand a = lower_expr(*t.then_value);
        Operand b = lower_expr(*t.else_value);
        Instr in;
        in.op = Op::kSelect;
        in.dst = alloc_reg();
        in.a = c;
        in.b = a;
        in.c = b;
        Operand r = Operand::reg(in.dst);
        emit(std::move(in));
        return r;
      }
      case ExprKind::kCast: {
        const auto& cs = static_cast<const CastExpr&>(e);
        Operand a = lower_expr(*cs.operand);
        Instr in;
        in.op = Op::kCast;
        in.aux = static_cast<std::uint8_t>(cs.to);
        in.dst = alloc_reg();
        in.a = a;
        Operand r = Operand::reg(in.dst);
        emit(std::move(in));
        return r;
      }
    }
    emit_trap("unreachable expression kind");
    return Operand::immediate(Value::of_int(0));
  }

  Operand lower_varref(const VarRef& v) {
    if (slot_is_geometry(v.sim_slot))
      return Operand::geom(slot_geometry_code(v.sim_slot));
    const SlotInfo* si = info(v.sim_slot);
    // Uniform kernel arguments carry no liveness or shadow state, so the
    // AST's var_read_check has no observable effect on them: pure view.
    if (si && si->kind == SlotInfo::Kind::kUniformParam)
      return Operand::uniform(v.sim_slot);
    {
      Instr in;
      in.op = Op::kVarGuard;
      in.slot = v.sim_slot;
      in.name = intern(v.name);
      in.loc = v.loc();
      emit(std::move(in));
    }
    if (si && si->kind == SlotInfo::Kind::kDecl && si->type.is_scalar())
      return Operand::slot_data(v.sim_slot);
    // Arrays, buffer params and undeclared names make kVarGuard throw;
    // the operand is unreachable.
    return Operand::immediate(Value::of_int(0));
  }

  /// Load when `store` is null; store `*store` otherwise. Mirrors
  /// eval_index, with structural errors resolved statically into traps.
  Operand lower_index(const ArrayIndex& ai, const Operand* store) {
    if (ai.base->kind() != ExprKind::kVarRef) {
      emit_trap("array base must be a variable at " + ai.loc().str());
      return Operand::immediate(Value::of_int(0));
    }
    const auto& base = static_cast<const VarRef&>(*ai.base);
    const std::string& name = base.name;
    const SlotInfo* si = info(base.sim_slot);
    if (!si || si->kind == SlotInfo::Kind::kNone) {
      // Never declared (or geometry/unbound): slot_at raises the same
      // "use of undeclared variable" / internal error the AST would.
      emit_check_live(base.sim_slot, name, ai.loc());
      return Operand::immediate(Value::of_int(0));
    }
    if (si->kind == SlotInfo::Kind::kBufferParam) {
      if (ai.indices.size() != 1) {
        emit_trap("pointer '" + name + "' requires exactly one index");
        return Operand::immediate(Value::of_int(0));
      }
      Operand idx = lower_expr(*ai.indices[0]);
      Instr in;
      in.op = store ? Op::kBufStore : Op::kBufLoad;
      in.slot = base.sim_slot;
      in.name = intern(name);
      in.a = idx;
      in.loc = ai.loc();
      if (store) {
        in.b = *store;
        emit(std::move(in));
        return Operand::immediate(Value::of_int(0));
      }
      in.dst = alloc_reg();
      Operand r = Operand::reg(in.dst);
      emit(std::move(in));
      return r;
    }
    // Declared slots may not be live yet on this path; reproduce the
    // AST's slot_at-first ordering before any static trap or index eval.
    emit_check_live(base.sim_slot, name, ai.loc());
    if (si->kind == SlotInfo::Kind::kUniformParam || !si->type.is_array()) {
      emit_trap("'" + name + "' is not an array at " + ai.loc().str());
      return Operand::immediate(Value::of_int(0));
    }
    const auto& dims = si->type.array_dims;
    if (ai.indices.size() != dims.size()) {
      emit_trap("array '" + name + "' has " + std::to_string(dims.size()) +
                " dims, indexed with " + std::to_string(ai.indices.size()) +
                " at " + ai.loc().str());
      return Operand::immediate(Value::of_int(0));
    }
    const std::int32_t flat = alloc_reg();
    for (std::size_t d = 0; d < dims.size(); ++d) {
      Operand idx = lower_expr(*ai.indices[d]);
      if (d > 0) emit_charge();  // index math
      Instr in;
      in.op = Op::kFlatten;
      in.dst = flat;
      in.a = idx;
      in.imm = dims[d];
      in.aux = d == 0 ? 1 : 0;
      in.loc = ai.loc();
      emit(std::move(in));
    }
    Op op;
    switch (si->type.space) {
      case AddrSpace::kShared:
        op = store ? Op::kSharedStore : Op::kSharedLoad;
        break;
      case AddrSpace::kLocal:
      case AddrSpace::kRegister:
      case AddrSpace::kConstant:
        op = store ? Op::kLocalStore : Op::kLocalLoad;
        break;
      case AddrSpace::kGlobal:
      default:
        emit_trap("unsupported address space for array '" + name + "'");
        return Operand::immediate(Value::of_int(0));
    }
    Instr in;
    in.op = op;
    in.slot = base.sim_slot;
    in.name = intern(name);
    in.a = Operand::reg(flat);
    in.loc = ai.loc();
    if (store) {
      in.b = *store;
      emit(std::move(in));
      return Operand::immediate(Value::of_int(0));
    }
    in.dst = alloc_reg();
    Operand r = Operand::reg(in.dst);
    emit(std::move(in));
    return r;
  }

  void emit_check_live(std::int32_t slot, const std::string& name,
                       SourceLoc loc) {
    Instr in;
    in.op = Op::kCheckLive;
    in.slot = slot;
    in.name = intern(name);
    in.loc = loc;
    emit(std::move(in));
  }

  Operand lower_call(const CallExpr& c) {
    const std::string& f = c.callee;
    Builtin b = c.sim_builtin == kBuiltinUnset
                    ? resolve_builtin(f)
                    : static_cast<Builtin>(c.sim_builtin);
    auto unary_math = [&](MathFn fn) -> Operand {
      if (c.args.size() != 1) {
        emit_trap(f + " expects 1 argument at " + c.loc().str());
        return Operand::immediate(Value::of_int(0));
      }
      Operand a = lower_expr(*c.args[0]);
      Instr in;
      in.op = Op::kMath1;
      in.aux = static_cast<std::uint8_t>(fn);
      in.dst = alloc_reg();
      in.a = a;
      Operand r = Operand::reg(in.dst);
      emit(std::move(in));
      return r;
    };
    switch (b) {
      case Builtin::kSyncthreads:
        emit_loc(Op::kSync, c.loc());
        return Operand::immediate(Value::of_int(0));
      case Builtin::kShfl:
      case Builtin::kShflUp:
      case Builtin::kShflDown:
      case Builtin::kShflXor:
        return lower_shfl(c, b);
      case Builtin::kSqrt: return unary_math(MathFn::kSqrt);
      case Builtin::kFabs: return unary_math(MathFn::kFabs);
      case Builtin::kExp: return unary_math(MathFn::kExp);
      case Builtin::kLog: return unary_math(MathFn::kLog);
      case Builtin::kSin: return unary_math(MathFn::kSin);
      case Builtin::kCos: return unary_math(MathFn::kCos);
      case Builtin::kFloor: return unary_math(MathFn::kFloor);
      case Builtin::kRsqrt: return unary_math(MathFn::kRsqrt);
      case Builtin::kAbs: {
        if (c.args.size() != 1) {
          emit_trap("abs expects 1 argument at " + c.loc().str());
          return Operand::immediate(Value::of_int(0));
        }
        Operand a = lower_expr(*c.args[0]);
        Instr in;
        in.op = Op::kAbs;
        in.dst = alloc_reg();
        in.a = a;
        Operand r = Operand::reg(in.dst);
        emit(std::move(in));
        return r;
      }
      case Builtin::kMin:
      case Builtin::kMax:
      case Builtin::kFminf:
      case Builtin::kFmaxf:
      case Builtin::kPowf: {
        if (c.args.size() != 2) {
          emit_trap(f + " expects 2 arguments at " + c.loc().str());
          return Operand::immediate(Value::of_int(0));
        }
        Operand x = lower_expr(*c.args[0]);
        Operand y = lower_expr(*c.args[1]);
        Instr in;
        in.op = Op::kMath2;
        in.aux = static_cast<std::uint8_t>(b);
        in.dst = alloc_reg();
        in.a = x;
        in.b = y;
        Operand r = Operand::reg(in.dst);
        emit(std::move(in));
        return r;
      }
      case Builtin::kNotBuiltin:
        break;
    }
    emit_trap("unknown function '" + f + "' at " + c.loc().str());
    return Operand::immediate(Value::of_int(0));
  }

  Operand lower_shfl(const CallExpr& c, Builtin b) {
    emit(Op::kShflGuard);  // sm_30+ check (device version is runtime state)
    if (c.args.size() != 3) {
      emit_trap(c.callee + " expects (var, lane, width) at " + c.loc().str());
      return Operand::immediate(Value::of_int(0));
    }
    // The source variable is evaluated under a warp-broadened mask with
    // uninit reports suppressed; selected source lanes are re-checked
    // inside do_shfl.
    emit(Op::kShflArgBegin);
    enter_masks(1);
    Operand var = lower_expr(*c.args[0]);
    leave_masks(1);
    emit(Op::kShflArgEnd);
    Operand sel = lower_expr(*c.args[1]);
    Operand wid = lower_expr(*c.args[2]);
    Instr in;
    in.op = Op::kShfl;
    in.aux = static_cast<std::uint8_t>(b);
    in.dst = alloc_reg();
    in.a = var;
    in.b = sel;
    in.c = wid;
    in.name = intern(c.callee);
    in.slot = kSlotUnbound;
    in.imm = -1;
    in.loc = c.loc();
    if (c.args[0]->kind() == ExprKind::kVarRef) {
      const auto& vr = static_cast<const VarRef&>(*c.args[0]);
      in.slot = vr.sim_slot;
      in.imm = intern(vr.name);
    }
    Operand r = Operand::reg(in.dst);
    emit(std::move(in));
    return r;
  }

  const BoundKernel& bound_;
  Program prog_;
  std::vector<SlotInfo> info_;
  std::size_t nparams_ = 0;
  std::unordered_map<const DeclStmt*, std::int64_t> decl_index_;
  std::unordered_map<std::string, std::int32_t> name_ids_;
  std::int32_t next_reg_ = 0;
  std::int32_t max_regs_ = 0;
  int depth_ = 0;
  int max_depth_ = 0;
  int loops_ = 0;
  int max_loops_ = 0;
};

}  // namespace

std::shared_ptr<const Program> lower(const BoundKernel& bound) {
  try {
    Lowerer lw(bound);
    return lw.run();
  } catch (const Decline&) {
    return nullptr;
  }
}

}  // namespace cudanp::sim::bytecode
