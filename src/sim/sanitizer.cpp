#include "sim/sanitizer.hpp"

#include <sstream>

namespace cudanp::sim {

const char* to_string(HazardKind k) {
  switch (k) {
    case HazardKind::kSharedRace: return "shared-race";
    case HazardKind::kBarrierDivergence: return "barrier-divergence";
    case HazardKind::kUninitRead: return "uninit-read";
    case HazardKind::kShflHazard: return "shfl-hazard";
    case HazardKind::kSimFault: return "sim-fault";
    case HazardKind::kWatchdogTrip: return "watchdog-trip";
  }
  return "unknown";
}

std::string HazardReport::str() const {
  std::ostringstream os;
  os << to_string(kind) << ": " << message << " [kernel '" << kernel
     << "' block (" << block.x << "," << block.y << "," << block.z << ")";
  if (thread >= 0) os << " thread " << thread;
  os << " at " << loc.str() << "]";
  return os.str();
}

void SanitizerEngine::report(HazardReport r) {
  ++total_;
  if (opt_.dedupe) {
    std::string key = std::to_string(static_cast<int>(r.kind)) + "|" +
                      r.kernel + "|" + std::to_string(r.loc.line) + ":" +
                      std::to_string(r.loc.column);
    if (!seen_.insert(std::move(key)).second) return;
  }
  reports_.push_back(std::move(r));
  if (opt_.error_limit > 0 && reports_.size() >= opt_.error_limit) {
    limit_reached_ = true;
    throw HazardLimitReached{};
  }
}

std::size_t SanitizerEngine::count(HazardKind k) const {
  std::size_t n = 0;
  for (const auto& r : reports_)
    if (r.kind == k) ++n;
  return n;
}

std::string SanitizerEngine::summary() const {
  std::ostringstream os;
  if (reports_.empty()) {
    os << "sanitizer: no hazards detected\n";
    return os.str();
  }
  for (const auto& r : reports_) os << r.str() << "\n";
  os << "sanitizer: " << reports_.size() << " distinct hazard(s), " << total_
     << " total observation(s)";
  if (limit_reached_) os << "; error limit reached, run stopped early";
  os << "\n";
  return os.str();
}

void SanitizerEngine::clear() {
  reports_.clear();
  seen_.clear();
  total_ = 0;
  limit_reached_ = false;
}

void SanitizerEngine::mark_buffer_uninitialized(BufferId id,
                                                std::size_t elems) {
  buffer_shadows_[id].assign(elems, 0);
}

std::vector<std::uint8_t>* SanitizerEngine::buffer_shadow(BufferId id) {
  auto it = buffer_shadows_.find(id);
  return it == buffer_shadows_.end() ? nullptr : &it->second;
}

}  // namespace cudanp::sim
