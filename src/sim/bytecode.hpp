// Per-launch bytecode lowering of a slot-bound kernel.
//
// The lowering pass walks the bound AST once per launch and emits a flat
// instruction stream with virtual registers and resolved jump targets;
// sim/vm.cpp executes it with a dispatch loop over SoA lane state. Every
// instruction maps 1:1 onto the exec::BlockCore helper the AST walker
// calls at the same point, in the same order, so charges, watchdog steps,
// hazard reports and error messages are bit-identical by construction.
//
// Operands distinguish registers, folded immediates, geometry lane
// caches, uniform kernel arguments and live slot storage; the last three
// are read in place at use, so straight-line arithmetic never copies a
// lane vector. Structural errors the AST raises while walking (unknown
// callee, wrong arity, non-array indexing, break/continue) lower to
// kTrap instructions carrying the precomposed message, positioned where
// the AST would throw.
//
// lower() declines — returns null, and the launch transparently runs the
// AST engine — for the rare shapes whose static slot typing is
// ambiguous: a declaration shadowing a kernel parameter's slot, two
// declarations disagreeing on one slot's type, or a shared-memory scalar
// declaration (unsupported by both engines, but only diagnosed
// dynamically by the AST walk).
//
// Implementation detail of sim/; include only from the interpreter, the
// VM and their tests.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ir/kernel.hpp"
#include "sim/binder.hpp"
#include "sim/memory.hpp"
#include "support/diagnostics.hpp"

namespace cudanp::sim::bytecode {

enum class Op : std::uint8_t {
  kHalt,          ///< End of program.
  kGuard,         ///< Clear returned lanes; empty mask -> jump `target`.
  kStep,          ///< count_step(loc): watchdog + fault hook.
  kLeafBegin,     ///< begin_leaf_stmt (latency window open).
  kLeafEnd,       ///< end_leaf_stmt (latency window fold).
  kCharge,        ///< charge_issue(mask, weight[aux]).
  kTrap,          ///< throw SimError(names[name]).
  kVarGuard,      ///< var_read_check(slot): liveness/uninit, no copy.
  kCheckLive,     ///< slot_at(slot): liveness errors only.
  kStoreVar,      ///< store_var(slot, a).
  kDeclare,       ///< declare(decls[imm]).
  kDeclInit,      ///< decl_scalar_init(decls[imm], a).
  kDeclFill,      ///< decl_fill(decls[imm], element dst, lane 0 of a).
  kDeclShadow,    ///< decl_shadow_all(decls[imm]).
  kMaskLane0,     ///< Push the lane-0-only mask (brace initializers).
  kMaskPop,       ///< Pop one mask.
  kBin,           ///< dst = a (BinOp aux) b.
  kCompound,      ///< dst = a (BinOp aux) b, fixed ALU charge.
  kUn,            ///< dst = (UnOp aux) a.
  kCast,          ///< dst = (ScalarType aux) a.
  kSelect,        ///< dst = a ? b : c.
  kMath1,         ///< dst = fn[aux](a)  (unary math builtin).
  kAbs,           ///< dst = abs(a).
  kMath2,         ///< dst = (Builtin aux)(a, b)  (min/max/fminf/fmaxf/powf).
  kSync,          ///< __syncthreads().
  kShflGuard,     ///< sm_30+ check for the shfl family.
  kShflArgBegin,  ///< Push warp-broadened mask; suppress uninit checks.
  kShflArgEnd,    ///< Pop it.
  kShfl,          ///< dst = shfl(a=var, b=sel, c=width).
  kFlatten,       ///< flat[dst] = flat[dst] * imm + a (bounds-checked).
  kBufLoad,       ///< dst = buffer[slot][a].
  kBufStore,      ///< buffer[slot][a] = b.
  kSharedLoad,    ///< dst = shared[slot][flat a].
  kSharedStore,   ///< shared[slot][flat a] = b.
  kLocalLoad,     ///< dst = local/register/constant[slot][flat a].
  kLocalStore,    ///< local/register/constant[slot][flat a] = b.
  kIfSplit,       ///< Split mask on a; push arm masks; empty-then -> target.
  kIfElse,        ///< Pop then mask; empty else -> pop + jump target.
  kIfEnd,         ///< Pop the surviving arm mask.
  kLoopEnter,     ///< Push loop mask copy + watchdog loop scope.
  kLoopBackedge,  ///< count_step(loc) + back-edge counter.
  kMaskAnd,       ///< Clear lanes of the current mask where !truthy(a).
  kLoopCheck,     ///< Empty mask -> jump target; else ++iters, valve check.
  kLoopLatchFor,  ///< Clear returned; empty mask -> jump target (for latch).
  kClearReturned, ///< Clear returned lanes only (while latch).
  kLoopExit,      ///< Pop loop mask + watchdog loop scope.
  kJump,          ///< pc = target.
  kReturn,        ///< Mark active lanes returned.
};

/// Weight selector for kCharge.
enum class ChargeKind : std::uint8_t { kAlu };

/// Function selector for kMath1 (index into the VM's math table).
enum class MathFn : std::uint8_t {
  kSqrt, kFabs, kExp, kLog, kSin, kCos, kFloor, kRsqrt,
};

/// A value source: materialized register, folded immediate, geometry lane
/// cache, uniform kernel argument, or live scalar slot storage (the last
/// three are zero-copy views resolved at use).
struct Operand {
  enum class Kind : std::uint8_t {
    kNone, kReg, kImm, kGeom, kUniform, kSlotData,
  };
  Kind kind = Kind::kNone;
  std::int32_t id = 0;  ///< register index / geometry code / slot id
  Value imm{};

  [[nodiscard]] static Operand reg(std::int32_t r) {
    return {Kind::kReg, r, {}};
  }
  [[nodiscard]] static Operand immediate(Value v) {
    return {Kind::kImm, 0, v};
  }
  [[nodiscard]] static Operand geom(int code) {
    return {Kind::kGeom, code, {}};
  }
  [[nodiscard]] static Operand uniform(std::int32_t slot) {
    return {Kind::kUniform, slot, {}};
  }
  [[nodiscard]] static Operand slot_data(std::int32_t slot) {
    return {Kind::kSlotData, slot, {}};
  }
};

struct Instr {
  Op op = Op::kHalt;
  std::uint8_t aux = 0;      ///< BinOp/UnOp/ScalarType/Builtin/MathFn/flags
  std::int32_t dst = -1;     ///< destination register (or element index)
  std::int32_t slot = -1;    ///< frame slot id
  std::int32_t target = -1;  ///< jump target (instruction index)
  std::int32_t name = -1;    ///< index into Program::names
  std::int64_t imm = 0;      ///< decl index / dim extent / var-name index
  Operand a, b, c;
  SourceLoc loc{};
};

/// One lowered kernel launch. Immutable after lower(); shared by every
/// block (and every worker thread) of the launch.
struct Program {
  std::vector<Instr> code;
  /// Variable / callee names and precomposed trap messages.
  std::vector<std::string> names;
  /// Declaration statements, for kDeclare/kDeclInit/kDeclFill/kDeclShadow.
  std::vector<const ir::DeclStmt*> decls;
  int num_regs = 0;
  int max_mask_depth = 0;
  int max_loop_depth = 0;
};

/// Lowers a bound kernel to bytecode, or returns null when a construct's
/// static slot typing is ambiguous (the caller falls back to the AST
/// engine for the whole launch).
[[nodiscard]] std::shared_ptr<const Program> lower(const BoundKernel& bound);

}  // namespace cudanp::sim::bytecode
