#include "sim/fault.hpp"

#include <csignal>
#include <cstring>
#include <sstream>

#include "ir/expr.hpp"
#include "ir/stmt.hpp"
#include "support/json.hpp"
#include "support/rng.hpp"

namespace cudanp::sim {

namespace {

using namespace cudanp::ir;

/// Removes the first `__syncthreads();` statement under `b`, depth-first
/// in source order. Hand-rolled recursion (not for_each_stmt_mut) so the
/// erase never invalidates a live walker iterator.
bool drop_first_barrier(Block& b, SourceLoc* where) {
  for (auto it = b.stmts.begin(); it != b.stmts.end(); ++it) {
    Stmt& s = **it;
    if (s.kind() == StmtKind::kExpr) {
      const auto& e = static_cast<const ExprStmt&>(s);
      if (e.expr->kind() == ExprKind::kCall &&
          static_cast<const CallExpr&>(*e.expr).callee == "__syncthreads") {
        *where = s.loc();
        b.stmts.erase(it);
        return true;
      }
    }
    switch (s.kind()) {
      case StmtKind::kBlock:
        if (drop_first_barrier(static_cast<Block&>(s), where)) return true;
        break;
      case StmtKind::kIf: {
        auto& i = static_cast<IfStmt&>(s);
        if (drop_first_barrier(*i.then_body, where)) return true;
        if (i.else_body && drop_first_barrier(*i.else_body, where))
          return true;
        break;
      }
      case StmtKind::kFor:
        if (drop_first_barrier(*static_cast<ForStmt&>(s).body, where))
          return true;
        break;
      case StmtKind::kWhile:
        if (drop_first_barrier(*static_cast<WhileStmt&>(s).body, where))
          return true;
        break;
      default:
        break;
    }
  }
  return false;
}

/// Skews the first indexed store's innermost index by `offset`,
/// modelling a transform bug in slot arithmetic.
bool skew_first_store(Block& b, std::int64_t offset, SourceLoc* where) {
  for (auto& sp : b.stmts) {
    Stmt& s = *sp;
    switch (s.kind()) {
      case StmtKind::kAssign: {
        auto& a = static_cast<AssignStmt&>(s);
        if (a.lhs->kind() == ExprKind::kArrayIndex) {
          auto& idx = static_cast<ArrayIndex&>(*a.lhs);
          ExprPtr& inner = idx.indices.back();
          inner = make_bin(BinOp::kAdd, std::move(inner), make_int(offset));
          *where = s.loc();
          return true;
        }
        break;
      }
      case StmtKind::kBlock:
        if (skew_first_store(static_cast<Block&>(s), offset, where))
          return true;
        break;
      case StmtKind::kIf: {
        auto& i = static_cast<IfStmt&>(s);
        if (skew_first_store(*i.then_body, offset, where)) return true;
        if (i.else_body && skew_first_store(*i.else_body, offset, where))
          return true;
        break;
      }
      case StmtKind::kFor:
        if (skew_first_store(*static_cast<ForStmt&>(s).body, offset, where))
          return true;
        break;
      case StmtKind::kWhile:
        if (skew_first_store(*static_cast<WhileStmt&>(s).body, offset,
                             where))
          return true;
        break;
      default:
        break;
    }
  }
  return false;
}

}  // namespace

int FaultInjector::corrupt_memory(DeviceMemory& mem) {
  if (plan_.bit_flips <= 0 || mem.buffer_count() == 0) return 0;
  SplitMix64 rng(plan_.seed);
  int flipped = 0;
  for (int k = 0; k < plan_.bit_flips; ++k) {
    // Up to a few retries per flip in case the chosen buffer is empty.
    for (int attempt = 0; attempt < 8; ++attempt) {
      auto id = static_cast<BufferId>(rng.next_below(mem.buffer_count()));
      DeviceBuffer& buf = mem.buffer(id);
      if (buf.size() == 0) continue;
      std::size_t elem = rng.next_below(buf.size());
      int bit = static_cast<int>(rng.next_below(32));
      std::uint32_t word = 0;
      if (buf.type() == ir::ScalarType::kFloat)
        std::memcpy(&word, &buf.f32()[elem], sizeof(word));
      else
        std::memcpy(&word, &buf.i32()[elem], sizeof(word));
      word ^= 1u << bit;
      if (buf.type() == ir::ScalarType::kFloat)
        std::memcpy(&buf.f32()[elem], &word, sizeof(word));
      else
        std::memcpy(&buf.i32()[elem], &word, sizeof(word));
      log_.push_back("bit-flip: buffer " + std::to_string(id) + " element " +
                     std::to_string(elem) + " bit " + std::to_string(bit));
      ++flipped;
      break;
    }
  }
  return flipped;
}

bool FaultInjector::corrupt_kernel(ir::Kernel& kernel) {
  bool mutated = false;
  SourceLoc where;
  if (plan_.drop_barrier && drop_first_barrier(*kernel.body, &where)) {
    log_.push_back("ast-corruption: dropped __syncthreads() at " +
                   where.str() + " in kernel '" + kernel.name + "'");
    mutated = true;
  }
  if (plan_.skew_index) {
    SplitMix64 rng(plan_.seed ^ 0x51e3ULL);
    auto offset = static_cast<std::int64_t>(1 + rng.next_below(3));
    if (skew_first_store(*kernel.body, offset, &where)) {
      log_.push_back("ast-corruption: skewed store index by +" +
                     std::to_string(offset) + " at " + where.str() +
                     " in kernel '" + kernel.name + "'");
      mutated = true;
    }
  }
  // The binder caches slot annotations on the AST; a mutated tree must
  // rebind from scratch or new nodes would execute as kSlotUnbound.
  if (mutated) kernel.sim_binding = nullptr;
  return mutated;
}

void FaultInjector::maybe_fault(std::int64_t flat_block, std::int64_t step,
                                const SourceLoc& loc) const {
  if (plan_.crash_at_step > 0 && step == plan_.crash_at_step &&
      (plan_.fault_block < 0 || flat_block == plan_.fault_block)) {
    // A genuine native crash, not an exception: nothing up-stack can
    // contain this. Only a process-isolated worker survives it.
    std::raise(SIGSEGV);
  }
  if (plan_.sim_error_at_step <= 0 || step != plan_.sim_error_at_step)
    return;
  if (plan_.fault_block >= 0 && flat_block != plan_.fault_block) return;
  throw SimError("injected fault: SimError at interpreted statement " +
                 std::to_string(step) + " of block " +
                 std::to_string(flat_block) + " at " + loc.str() +
                 " (fault plan seed " + std::to_string(plan_.seed) + ")");
}

std::string FaultPlan::json() const {
  std::ostringstream os;
  os << "{\"seed\":" << seed << ",\"bit_flips\":" << bit_flips
     << ",\"sim_error_at_step\":" << sim_error_at_step
     << ",\"fault_block\":" << fault_block << ",\"drop_barrier\":"
     << (drop_barrier ? "true" : "false") << ",\"skew_index\":"
     << (skew_index ? "true" : "false")
     << ",\"stall_block\":" << stall_block
     << ",\"crash_at_step\":" << crash_at_step << ",\"oom_mb\":" << oom_mb
     << ",\"wedge_worker\":" << (wedge_worker ? "true" : "false")
     << ",\"corrupt_cache\":" << (corrupt_cache ? "true" : "false")
     << ",\"tear_cache\":" << (tear_cache ? "true" : "false")
     << ",\"corrupt_cert\":" << (corrupt_cert ? "true" : "false")
     << ",\"tear_cert\":" << (tear_cert ? "true" : "false") << "}";
  return os.str();
}

std::optional<FaultPlan> FaultPlan::from_json_value(const json::Value& v) {
  if (!v.is_object()) return std::nullopt;
  FaultPlan p;
  p.seed = static_cast<std::uint64_t>(v.get_i64("seed", 0x5eedLL));
  p.bit_flips = static_cast<int>(v.get_i64("bit_flips"));
  p.sim_error_at_step = v.get_i64("sim_error_at_step");
  p.fault_block = v.get_i64("fault_block", -1);
  p.drop_barrier = v.get_bool("drop_barrier");
  p.skew_index = v.get_bool("skew_index");
  p.stall_block = v.get_i64("stall_block", -1);
  p.crash_at_step = v.get_i64("crash_at_step");
  p.oom_mb = v.get_i64("oom_mb");
  p.wedge_worker = v.get_bool("wedge_worker");
  p.corrupt_cache = v.get_bool("corrupt_cache");
  p.tear_cache = v.get_bool("tear_cache");
  p.corrupt_cert = v.get_bool("corrupt_cert");
  p.tear_cert = v.get_bool("tear_cert");
  return p;
}

std::optional<FaultPlan> FaultPlan::from_json(std::string_view text) {
  auto v = json::parse(text);
  if (!v) return std::nullopt;
  return from_json_value(*v);
}

}  // namespace cudanp::sim
