// FaultInjector: the chaos-harness side of the robustness layer.
//
// A seeded FaultPlan describes a deterministic campaign of faults to
// inject into a run: bit flips in device buffers between launches,
// SimErrors thrown at the Nth interpreted statement of a chosen block,
// AST corruption of a transform variant (drop a __syncthreads, skew a
// store index), and block stalls that must be caught by the interpreter
// watchdog. tests/chaos_test.cpp drives campaigns over every fault class
// and asserts each one is caught by the sanitizer, the watchdog, or
// NpCompiler::validate — never silently absorbed. See docs/robustness.md
// for the plan format and the detection contract.
//
// The injector is wired into execution through
// Interpreter::Options::fault; production runs leave that null, so the
// hot path pays one branch per statement.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "ir/kernel.hpp"
#include "sim/memory.hpp"
#include "support/source_location.hpp"

namespace cudanp::json {
class Value;
}

namespace cudanp::sim {

/// One seeded campaign. Every field is independent; a default plan
/// injects nothing. All randomness derives from `seed`, so a plan
/// replays byte-identically.
struct FaultPlan {
  std::uint64_t seed = 0x5eedULL;
  /// Flip this many randomly chosen bits across the allocated device
  /// buffers when corrupt_memory runs (between launches).
  int bit_flips = 0;
  /// When > 0, throw a SimError at exactly this interpreted-statement
  /// count (watchdog step counter) of the targeted block.
  std::int64_t sim_error_at_step = 0;
  /// Flat block index sim_error_at_step applies to; -1 = every block.
  std::int64_t fault_block = -1;
  /// AST corruption (corrupt_kernel): remove the first __syncthreads()
  /// statement. Invisible to the lockstep execution model by design —
  /// only SanitizerEngine's kPortable race mode can catch it.
  bool drop_barrier = false;
  /// AST corruption (corrupt_kernel): skew the index of the first
  /// indexed store by a small seeded offset, modelling a transform bug
  /// in slot arithmetic. Caught as an OOB kSimFault or as an output
  /// mismatch in NpCompiler::validate.
  bool skew_index = false;
  /// When >= 0, this flat block spins consuming watchdog budget until
  /// the step limit trips (requires a finite watchdog; with the watchdog
  /// disabled the stall degrades to an immediate injected SimError).
  std::int64_t stall_block = -1;
  /// When > 0, raise SIGSEGV (a genuine native crash, not an exception)
  /// at exactly this interpreted-statement count of the targeted block.
  /// Kills the whole process — survivable only under the serve layer's
  /// --isolate=process worker sandbox, which is the point.
  std::int64_t crash_at_step = 0;
  /// When > 0, attempt a single allocation of this many MiB before the
  /// first launch of the attempt (serve::execute_attempt). Under a
  /// worker RLIMIT_AS cap the allocation fails and the attempt is
  /// classified resource-limit; without a cap the probe is allocated,
  /// never touched, and immediately freed (harmless).
  std::int64_t oom_mb = 0;
  /// Worker-only fault: the execution worker stops responding entirely
  /// (no heartbeat, no result) while holding the job, modelling a wedged
  /// process. Caught by the supervisor's read timeout; ignored by
  /// in-process execution.
  bool wedge_worker = false;
  /// Serve-layer fault: before this job's artifact-cache lookup, flip a
  /// byte in the stored entry's payload (checksum mismatch). The cache
  /// must quarantine the entry and recompile, never serve it. Ignored
  /// when the batch runs without a cache.
  bool corrupt_cache = false;
  /// Serve-layer fault: truncate the stored cache entry (a torn write),
  /// which must be quarantined exactly like corruption.
  bool tear_cache = false;
  /// Serve-layer fault: flip a byte in this job's stored equivalence
  /// certificates before lookup. A corrupt certificate must be
  /// quarantined as a miss and the variant re-certified from scratch —
  /// never trusted for the certified fast path.
  bool corrupt_cert = false;
  /// Serve-layer fault: truncate the stored certificates (torn write),
  /// quarantined exactly like corruption.
  bool tear_cert = false;

  /// Serializes every field; from_json reverses it exactly. This is how
  /// fault plans ride the worker-process wire protocol.
  [[nodiscard]] std::string json() const;
  [[nodiscard]] static std::optional<FaultPlan> from_json(
      std::string_view text);
  /// Same, from an already-parsed value (nested inside a larger doc).
  [[nodiscard]] static std::optional<FaultPlan> from_json_value(
      const cudanp::json::Value& v);
};

class FaultInjector {
 public:
  FaultInjector() = default;
  explicit FaultInjector(FaultPlan plan) : plan_(plan) {}

  [[nodiscard]] const FaultPlan& plan() const { return plan_; }

  /// Applies FaultPlan::bit_flips to the buffers in `mem`, seeded and
  /// logged. Returns the number of bits actually flipped (empty memory
  /// flips nothing).
  int corrupt_memory(DeviceMemory& mem);

  /// Applies the AST-corruption faults (drop_barrier / skew_index) to
  /// `kernel` in place and invalidates its cached simulator binding.
  /// Must run before the kernel's first interpretation, like a real
  /// transform bug would exist before any launch. Returns true when at
  /// least one mutation was applied.
  bool corrupt_kernel(ir::Kernel& kernel);

  /// Interpreter hook, called once per interpreted statement with the
  /// block's deterministic step counter: throws the planned SimError at
  /// the configured step. Thread-safe (const, no logging).
  void maybe_fault(std::int64_t flat_block, std::int64_t step,
                   const SourceLoc& loc) const;

  /// Interpreter hook: true when `flat_block` must stall until the
  /// watchdog trips.
  [[nodiscard]] bool should_stall(std::int64_t flat_block) const {
    return plan_.stall_block >= 0 && flat_block == plan_.stall_block;
  }

  /// Human-readable record of every fault applied by corrupt_memory /
  /// corrupt_kernel, in application order.
  [[nodiscard]] const std::vector<std::string>& log() const { return log_; }

 private:
  FaultPlan plan_;
  std::vector<std::string> log_;
};

}  // namespace cudanp::sim
