// Slot binder: the interpreter's once-per-kernel name-resolution prepass.
//
// The block-lockstep interpreter used to resolve every VarRef through an
// unordered_map<string, Slot> and every geometry name / builtin callee by
// string comparison, on every executed statement of every lane of every
// block. This binder walks the kernel AST once, assigns each distinct
// variable name an integer slot in a flat frame, classifies geometry
// names and builtin callees, and stamps the results onto the AST's
// mutable annotation fields (VarRef::sim_slot, DeclStmt::sim_slot,
// CallExpr::sim_builtin). The per-thread eval loop then never touches a
// string or a hash map.
//
// Semantics are preserved exactly, including error behaviour: names that
// never resolve are bound to a sentinel and still throw the original
// "use of undeclared variable" SimError lazily, only if the reference is
// actually executed; unknown callees likewise throw only when called.
//
// The binding is cached on the ir::Kernel itself (Kernel::sim_binding),
// so repeated launches of one kernel object — autotuner sweeps,
// NpCompiler::validate, the bench figures — bind once. The cache is
// lifetime-tied to the kernel and is not copied by Kernel::clone().
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "ir/kernel.hpp"

namespace cudanp::sim {

/// Builtin callees, resolved once so eval dispatches on an integer.
/// kNotBuiltin calls throw "unknown function" lazily at execution time.
enum class Builtin : std::int16_t {
  kNotBuiltin = -1,
  kSyncthreads,
  kShfl,
  kShflUp,
  kShflDown,
  kShflXor,
  kSqrt,
  kFabs,
  kExp,
  kLog,
  kSin,
  kCos,
  kFloor,
  kRsqrt,
  kAbs,
  kMin,
  kMax,
  kFminf,
  kFmaxf,
  kPowf,
};

/// Geometry value codes, in the order the lane caches are laid out.
enum Geom : int {
  kGeomThreadIdxX = 0,
  kGeomThreadIdxY,
  kGeomThreadIdxZ,
  kGeomBlockIdxX,
  kGeomBlockIdxY,
  kGeomBlockIdxZ,
  kGeomBlockDimX,
  kGeomBlockDimY,
  kGeomBlockDimZ,
  kGeomGridDimX,
  kGeomGridDimY,
  kGeomGridDimZ,
  kGeomCount,
};

// VarRef::sim_slot encoding: values >= 0 index the block frame; negative
// values are the codes below.
/// Name never declared anywhere in the kernel: throws "use of undeclared
/// variable" if the reference executes.
constexpr std::int32_t kSlotUndeclared = -1;
/// Geometry builtins: slot == kSlotGeomBase - geom_code.
constexpr std::int32_t kSlotGeomBase = -2;
/// Default annotation value of a node the binder has never visited (the
/// kernel was mutated after binding — an internal error if evaluated).
constexpr std::int32_t kSlotUnbound = std::numeric_limits<std::int32_t>::min();

[[nodiscard]] constexpr bool slot_is_geometry(std::int32_t slot) {
  return slot <= kSlotGeomBase && slot != kSlotUnbound;
}
[[nodiscard]] constexpr int slot_geometry_code(std::int32_t slot) {
  return static_cast<int>(kSlotGeomBase - slot);
}

/// Static description of one frame slot.
struct SlotDecl {
  std::string name;  // for error messages and hazard reports only
  bool is_param = false;
  std::size_t param_index = 0;  // into Kernel::params when is_param
};

/// The result of binding one kernel: the frame layout plus static size
/// hints. The AST annotations carry the per-node slot ids.
struct BoundKernel {
  const ir::Kernel* kernel = nullptr;
  std::vector<SlotDecl> slots;  // params first, then declared names
  /// Static upper bound on shared-memory words the kernel can declare;
  /// used to reserve the sanitizer's shared shadow map up front.
  std::uint64_t shared_words_bound = 0;

  [[nodiscard]] std::size_t num_slots() const { return slots.size(); }
};

/// CallExpr::sim_builtin value of a node the binder never visited
/// (matches the field's default in ir/expr.hpp).
constexpr std::int16_t kBuiltinUnset = -32768;

/// String -> Builtin resolution, the slow path the binder runs once per
/// call site (and eval falls back to for unbound nodes).
[[nodiscard]] Builtin resolve_builtin(const std::string& callee);

/// Binds `kernel` (or returns its cached binding). Thread-safe: concurrent
/// callers serialize on an internal mutex and the annotations are fully
/// written before the shared_ptr is published.
[[nodiscard]] std::shared_ptr<const BoundKernel> bind_kernel(
    const ir::Kernel& kernel);

}  // namespace cudanp::sim
