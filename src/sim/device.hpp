// GPU device model: architectural parameters and the occupancy calculator.
//
// The simulator is calibrated to the two GPUs used in the paper:
//   - GTX 680 (GK104, sm_30): all main results (Figs. 10-16, Table 1)
//   - Tesla K20c (GK110, sm_35): the dynamic-parallelism study (Fig. 1)
//
// Only parameters that the CUDA-NP mechanisms actually interact with are
// modeled: SMX count/clock, warp width, per-SMX limits (threads, blocks,
// registers, shared memory), DRAM bandwidth and latency, L1 behaviour for
// local memory, and shared-memory banking.
#pragma once

#include <cstdint>
#include <string>

namespace cudanp::sim {

struct DeviceSpec {
  std::string name;

  // Compute capability * 10; __shfl requires >= 30 (paper Sec. 3.6).
  int sm_version = 30;

  // ---- execution resources ----
  int num_smx = 8;             // streaming multiprocessors
  int warp_size = 32;
  int max_threads_per_block = 1024;
  int max_threads_per_smx = 2048;
  int max_blocks_per_smx = 16;
  int max_warps_per_smx = 64;

  // ---- register file / memories ----
  int registers_per_smx = 65536;   // 32-bit registers
  int max_registers_per_thread = 63;  // GK104/GK110 ABI limit
  std::int64_t shared_mem_per_smx = 48 * 1024;  // bytes (48 KB config)
  std::int64_t shared_mem_banks = 32;           // 4-byte banks
  std::int64_t l1_cache_bytes = 16 * 1024;      // remaining split for L1
  int l1_line_bytes = 128;

  // ---- timing ----
  double core_clock_ghz = 1.006;
  // Warp-instructions the SMX front-end can issue per cycle. GK104 has 4
  // schedulers with dual issue, but sustained ALU throughput is bounded by
  // 192 SPs / 32 lanes = 6 warp-ops per cycle; we use the scheduler bound
  // for issue and let instruction weights capture unit throughput.
  double issue_width = 6.0;
  double dram_bandwidth_gbs = 192.0;   // aggregate
  int dram_latency_cycles = 400;       // load-to-use, L2 miss
  int l2_latency_cycles = 180;         // (folded into dram path scaling)
  int l1_latency_cycles = 30;          // local-memory hit
  int smem_latency_cycles = 30;
  int shfl_latency_cycles = 2;
  int sync_latency_cycles = 20;

  // ---- dynamic parallelism (sm_35 only; Fig. 1 / Sec. 6) ----
  bool supports_dynamic_parallelism = false;
  // Fixed device-runtime cost per child-kernel launch, microseconds. The
  // paper's Fig. 1 microbenchmark implies ~ tens of us per launch once the
  // launch queue saturates.
  double child_launch_overhead_us = 15.0;
  // Max child launches the device runtime can retire concurrently.
  int child_launch_parallelism = 32;
  // Slowdown factor applied to a kernel merely *compiled* with -rdc (the
  // "dynamic-parallelism-enabled kernel overhead", Sec. 2.1: 142 -> 63
  // GB/s for the same code).
  double rdc_enabled_overhead_factor = 2.25;

  /// Bytes of DRAM moved per cycle per SMX (derived).
  [[nodiscard]] double dram_bytes_per_cycle_per_smx() const {
    return dram_bandwidth_gbs / core_clock_ghz / num_smx;
  }

  [[nodiscard]] static DeviceSpec gtx680();
  [[nodiscard]] static DeviceSpec k20c();
};

/// Result of the occupancy calculation for one kernel configuration
/// (mirrors Nvidia's occupancy calculator).
struct Occupancy {
  int threads_per_block = 0;
  int blocks_per_smx = 0;        // resident blocks
  int warps_per_block = 0;
  int active_warps = 0;          // resident warps per SMX
  int limit_blocks = 0;          // block-count limit
  int limit_threads = 0;         // thread-count limit
  int limit_registers = 0;       // register-file limit
  int limit_shared_mem = 0;      // shared-memory limit
  /// Which resource bound blocks_per_smx ("threads", "blocks",
  /// "registers", "smem").
  std::string limiting_factor;

  [[nodiscard]] double occupancy_fraction(const DeviceSpec& spec) const {
    return static_cast<double>(active_warps) / spec.max_warps_per_smx;
  }
};

/// Per-thread/per-block resource demand of a compiled kernel.
struct ResourceUsage {
  int registers_per_thread = 0;
  std::int64_t shared_mem_per_block = 0;  // bytes
  std::int64_t local_mem_per_thread = 0;  // bytes
};

/// Computes how many blocks of `threads_per_block` threads using
/// `resources` fit on one SMX. Returns blocks_per_smx == 0 when the kernel
/// cannot launch at all (e.g. shared memory per block exceeds the SMX).
[[nodiscard]] Occupancy compute_occupancy(const DeviceSpec& spec,
                                          int threads_per_block,
                                          const ResourceUsage& resources);

}  // namespace cudanp::sim
