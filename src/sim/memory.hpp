// Device memory: global buffers, the coalescing model, shared-memory bank
// conflicts, and the L1 model used for local-memory traffic.
//
// These three models are the levers CUDA-NP pulls (paper Secs. 3.3/3.4):
//   - inter-warp NP keeps the baseline's coalesced global access pattern,
//     intra-warp NP can break it -> the coalescer counts 128 B segments
//     actually touched by each warp access;
//   - shfl-based reduction avoids shared memory; when shared memory is
//     used, the 32-bank conflict model charges replays;
//   - local arrays (spilled per-thread arrays) go through a small L1; when
//     the resident working set exceeds the L1 share, misses turn into DRAM
//     traffic, which is exactly why Table 1's LM column matters.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "ir/type.hpp"
#include "sim/device.hpp"
#include "sim/value.hpp"
#include "support/diagnostics.hpp"

namespace cudanp::sim {

using BufferId = std::uint32_t;

/// A typed global-memory allocation.
class DeviceBuffer {
 public:
  DeviceBuffer(ir::ScalarType type, std::size_t elems, std::uint64_t base)
      : type_(type), base_addr_(base) {
    if (type == ir::ScalarType::kFloat)
      f32_.assign(elems, 0.0f);
    else
      i32_.assign(elems, 0);
  }

  [[nodiscard]] ir::ScalarType type() const { return type_; }
  [[nodiscard]] std::size_t size() const {
    return type_ == ir::ScalarType::kFloat ? f32_.size() : i32_.size();
  }
  [[nodiscard]] std::uint64_t base_addr() const { return base_addr_; }

  [[nodiscard]] Value load(std::size_t idx) const {
    check(idx);
    if (type_ == ir::ScalarType::kFloat)
      return Value::of_float(static_cast<double>(f32_[idx]));
    return Value::of_int(i32_[idx]);
  }
  void store(std::size_t idx, Value v) {
    check(idx);
    if (type_ == ir::ScalarType::kFloat)
      f32_[idx] = static_cast<float>(v.as_f());
    else
      i32_[idx] = static_cast<std::int32_t>(v.as_i());
  }

  /// Marks this buffer as living in constant memory: warp reads use the
  /// broadcast path instead of the coalescer (paper Sec. 3.4's fourth
  /// intra-warp-NP hazard).
  void set_constant(bool c) { constant_ = c; }
  [[nodiscard]] bool is_constant() const { return constant_; }

  [[nodiscard]] std::span<float> f32() { return f32_; }
  [[nodiscard]] std::span<const float> f32() const { return f32_; }
  [[nodiscard]] std::span<std::int32_t> i32() { return i32_; }
  [[nodiscard]] std::span<const std::int32_t> i32() const { return i32_; }

  /// Restores the freshly-allocated state (zero contents, not constant);
  /// used when the allocator recycles a released buffer.
  void clear() {
    constant_ = false;
    if (type_ == ir::ScalarType::kFloat)
      f32_.assign(f32_.size(), 0.0f);
    else
      i32_.assign(i32_.size(), 0);
  }

  /// Host bytes retained by this buffer's payload.
  [[nodiscard]] std::uint64_t payload_bytes() const {
    return static_cast<std::uint64_t>(size()) *
           ir::Type::scalar_size_bytes(type_);
  }

  /// Frees the payload storage for good. Only the free-list trim policy
  /// calls this, on released buffers: the slot (and its BufferId) stays
  /// valid but is never recycled again, so a long-lived service does not
  /// retain every buffer size it has ever seen. Accesses to a discarded
  /// buffer fail the usual bounds check (size() == 0).
  void discard() {
    discarded_ = true;
    f32_ = {};
    i32_ = {};
  }
  [[nodiscard]] bool discarded() const { return discarded_; }

 private:
  void check(std::size_t idx) const {
    if (idx >= size())
      throw SimError("global memory access out of bounds: index " +
                     std::to_string(idx) + " size " + std::to_string(size()));
  }

  ir::ScalarType type_;
  std::uint64_t base_addr_;
  bool constant_ = false;
  bool discarded_ = false;
  std::vector<float> f32_;
  std::vector<std::int32_t> i32_;
};

/// Registry of global-memory allocations; assigns non-overlapping virtual
/// addresses (256-byte aligned like cudaMalloc) so the coalescer can reason
/// about real byte addresses.
class DeviceMemory {
 public:
  /// Allocates (or recycles a released buffer of the same type and size —
  /// same id, same base address, contents zero-filled either way).
  BufferId alloc(ir::ScalarType type, std::size_t elems);
  /// Returns a buffer to the free pool so a later alloc() of the same
  /// shape reuses it instead of growing the address space. The id stays
  /// valid (slots are never destroyed) until alloc() hands it out again.
  /// Used for per-run scratch (e.g. CUDA-NP re-homed local arrays).
  ///
  /// The pool is bounded: when the bytes retained by released buffers
  /// exceed free_limit_bytes(), the oldest releases are discarded
  /// (payload freed, slot never recycled) so a long-lived service
  /// processing heterogeneous jobs does not grow without limit.
  void release(BufferId id);
  [[nodiscard]] DeviceBuffer& buffer(BufferId id);
  [[nodiscard]] const DeviceBuffer& buffer(BufferId id) const;
  [[nodiscard]] std::size_t buffer_count() const { return buffers_.size(); }
  /// High-water mark of allocated bytes (for reporting).
  [[nodiscard]] std::uint64_t allocated_bytes() const { return next_addr_; }

  /// Host bytes currently retained by the free pool awaiting reuse.
  [[nodiscard]] std::uint64_t free_list_bytes() const { return free_bytes_; }
  /// Cap on free_list_bytes(); releases beyond it evict FIFO-oldest.
  [[nodiscard]] std::uint64_t free_limit_bytes() const {
    return free_limit_bytes_;
  }
  /// Re-caps the pool and trims immediately; 0 disables pooling (every
  /// release discards its payload).
  void set_free_limit_bytes(std::uint64_t limit);

  /// Default pool cap: generous for one workload's scratch churn, small
  /// enough that a service run over thousands of heterogeneous jobs
  /// stays bounded.
  static constexpr std::uint64_t kDefaultFreeLimitBytes = 64ull << 20;

 private:
  void trim_free_list();  // evict FIFO-oldest until under the cap

  std::vector<DeviceBuffer> buffers_;
  std::vector<BufferId> free_;  // released ids awaiting reuse (FIFO)
  std::uint64_t next_addr_ = 0;
  std::uint64_t free_bytes_ = 0;
  std::uint64_t free_limit_bytes_ = kDefaultFreeLimitBytes;
};

/// Counts the 128-byte segments touched by one warp-wide access. `addrs`
/// and `active` are warp_size long; inactive lanes contribute nothing.
/// A fully coalesced 4-byte access by 32 lanes touches 1 segment; a fully
/// scattered one touches 32.
[[nodiscard]] int coalesced_transactions(std::span<const std::uint64_t> addrs,
                                         std::span<const std::uint8_t> active,
                                         int segment_bytes = 128);

/// Shared-memory conflict model: returns the number of serialized passes
/// (>= 1) for one warp-wide access to 4-byte words, with broadcast
/// detection (lanes reading the same word do not conflict).
[[nodiscard]] int smem_replays(std::span<const std::uint64_t> word_addrs,
                               std::span<const std::uint8_t> active,
                               int banks = 32);

/// Tiny set-associative cache used to model per-SMX L1 behaviour for
/// local-memory traffic. Capacity is divided by the number of resident
/// blocks to approximate inter-block contention on a real SMX.
class L1Cache {
 public:
  /// `capacity_bytes` <= 0 disables the cache (every access misses).
  L1Cache(std::int64_t capacity_bytes, int line_bytes, int ways = 4);

  /// Returns true on hit; misses allocate.
  bool access(std::uint64_t addr);
  void reset();
  [[nodiscard]] std::int64_t capacity() const { return capacity_; }

 private:
  std::int64_t capacity_;
  int line_bytes_;
  int ways_;
  std::size_t num_sets_;
  // tags_[set * ways + way]; 0 = invalid (tags are line addrs + 1).
  std::vector<std::uint64_t> tags_;
  std::vector<std::uint32_t> lru_;  // last-use stamps
  std::uint32_t clock_ = 0;
};

}  // namespace cudanp::sim
