#include "sim/dynpar.hpp"

#include <algorithm>
#include <cmath>

#include "support/diagnostics.hpp"

namespace cudanp::sim {

namespace {
/// Fraction of peak DRAM bandwidth a streaming copy achieves in practice
/// (142 GB/s on a 208 GB/s K20c per the paper's baseline).
constexpr double kCopyEfficiency = 0.683;
}  // namespace

double DynamicParallelismModel::baseline_copy_bandwidth_gbs() const {
  return spec_.dram_bandwidth_gbs * kCopyEfficiency;
}

double DynamicParallelismModel::launch_overhead_seconds(
    std::int64_t num_launches) const {
  if (num_launches <= 0) return 0.0;
  // The device runtime retires launches with limited concurrency; beyond
  // `child_launch_parallelism` pending launches the cost is linear. The
  // per-launch constant is calibrated so the Fig. 1 point (4096 launches
  // of 16K-thread children -> 34 GB/s) is met.
  double effective_launches =
      std::max<double>(1.0, static_cast<double>(num_launches) -
                                spec_.child_launch_parallelism);
  return effective_launches * spec_.child_launch_overhead_us * 1e-6 / 10.0;
}

double DynamicParallelismModel::communication_seconds(
    std::int64_t bytes) const {
  if (bytes <= 0) return 0.0;
  // Parent writes + child reads (and symmetric on the way back) => 2x
  // traffic each way at achievable bandwidth, plus a DRAM latency floor.
  double bw = spec_.dram_bandwidth_gbs * kCopyEfficiency * 1e9;
  double latency_floor = 2.0 * spec_.dram_latency_cycles /
                         (spec_.core_clock_ghz * 1e9);
  return 2.0 * static_cast<double>(bytes) / bw + latency_floor;
}

double DynamicParallelismModel::cdp_copy_bandwidth_gbs(
    std::int64_t total_floats, std::int64_t child_threads) const {
  if (!spec_.supports_dynamic_parallelism)
    throw SimError("device '" + spec_.name +
                   "' does not support dynamic parallelism (needs sm_35)");
  if (total_floats <= 0 || child_threads <= 0 ||
      child_threads > total_floats)
    throw SimError("invalid CDP copy configuration");

  const double bytes_moved = 2.0 * static_cast<double>(total_floats) * 4.0;
  // The copy itself pays the rdc-enabled overhead even before launch
  // costs (paper: 142 -> 63 GB/s for the same kernel).
  double copy_seconds = bytes_moved / (baseline_copy_bandwidth_gbs() * 1e9) *
                        spec_.rdc_enabled_overhead_factor;
  // Children too small to fill the device lower achievable bandwidth.
  double fill = std::min(
      1.0, static_cast<double>(child_threads) /
               (0.25 * spec_.max_threads_per_smx * spec_.num_smx));
  copy_seconds /= std::max(fill, 1e-3);

  std::int64_t num_launches = total_floats / child_threads;
  double total = copy_seconds + launch_overhead_seconds(num_launches);
  return bytes_moved / total / 1e9;
}

double DynamicParallelismModel::cdp_kernel_seconds(
    double baseline_seconds, std::int64_t num_launches, double child_fraction,
    std::int64_t comm_bytes_per_launch) const {
  // Work still executes (children run the parallel part, parents the
  // rest), with the rdc overhead applied to all of it; every launch pays
  // queue management plus its communication round trip.
  double work = baseline_seconds * spec_.rdc_enabled_overhead_factor *
                std::max(child_fraction, 1.0);
  return work + launch_overhead_seconds(num_launches) +
         static_cast<double>(num_launches) *
             communication_seconds(comm_bytes_per_launch) /
             std::max(1, spec_.child_launch_parallelism);
}

}  // namespace cudanp::sim
