// Analytic model of Nvidia dynamic parallelism (CDP) costs.
//
// The paper uses dynamic parallelism only as the *negative* comparator:
//   - Fig. 1: a memory-copy microbenchmark on a K20c collapses from
//     142 GB/s (no CDP) to 63 GB/s (merely compiling with CDP enabled)
//     to 34 GB/s and below as the copy is split into child launches;
//   - Sec. 6: CDP versions of NN/TMV/LE/LIB/CFD run 28.9/7.6/13.4/125.7/
//     52.3x slower than their baselines.
//
// The model has three documented components, calibrated to the published
// Fig. 1 end points:
//   1. `rdc_enabled_overhead_factor` — the fixed slowdown a kernel pays
//      for being compiled with the device runtime linked in;
//   2. a per-child-launch cost (device runtime queue management), paid
//      once per launch with limited concurrency;
//   3. parent<->child communication through global memory (a round trip
//      of the communicated bytes at DRAM bandwidth), because CDP children
//      cannot see the parent's registers or shared memory.
#pragma once

#include <cstdint>

#include "sim/device.hpp"

namespace cudanp::sim {

class DynamicParallelismModel {
 public:
  explicit DynamicParallelismModel(DeviceSpec spec) : spec_(std::move(spec)) {}

  /// Effective DRAM bandwidth (GB/s) of a plain memory-copy kernel that
  /// moves `total_floats` floats (read + write), without CDP.
  [[nodiscard]] double baseline_copy_bandwidth_gbs() const;

  /// Fig. 1: the copy is performed by `num_launches` child kernels of
  /// `child_threads` threads each (num_launches * child_threads =
  /// total_floats). Returns achieved GB/s.
  [[nodiscard]] double cdp_copy_bandwidth_gbs(std::int64_t total_floats,
                                              std::int64_t child_threads) const;

  /// Seconds of pure launch overhead for `num_launches` child launches.
  [[nodiscard]] double launch_overhead_seconds(std::int64_t num_launches) const;

  /// Seconds to round-trip `bytes` of parent state through global memory
  /// (parent writes, child reads, and back for results).
  [[nodiscard]] double communication_seconds(std::int64_t bytes) const;

  /// Sec. 6 estimate: total seconds for a CDP version of a kernel whose
  /// baseline takes `baseline_seconds`, where `num_launches` children are
  /// spawned over the run, each child does `child_fraction` of the
  /// baseline's work, and `comm_bytes` of parent state round-trips per
  /// launch.
  [[nodiscard]] double cdp_kernel_seconds(double baseline_seconds,
                                          std::int64_t num_launches,
                                          double child_fraction,
                                          std::int64_t comm_bytes_per_launch) const;

  [[nodiscard]] const DeviceSpec& spec() const { return spec_; }

 private:
  DeviceSpec spec_;
};

}  // namespace cudanp::sim
