#include "sim/exec_pool.hpp"

#include <algorithm>
#include <cstdlib>

#include "support/string_utils.hpp"

namespace cudanp::sim {

ExecPool& ExecPool::instance() {
  static ExecPool pool;
  return pool;
}

int ExecPool::resolve_jobs(int requested) {
  if (requested > 0) return std::min(requested, kMaxWorkers + 1);
  if (const char* env = std::getenv("CUDANP_JOBS")) {
    // Checked parse: "8x", "", or out-of-range values are ignored (fall
    // through to hardware concurrency) instead of atoi-ing to a prefix.
    if (auto v = parse_int(env, 1, kMaxWorkers + 1)) return *v;
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(std::min<unsigned>(hw, kMaxWorkers + 1));
}

void ExecPool::ensure_workers(int count) {
  count = std::min(count, kMaxWorkers);
  while (static_cast<int>(workers_.size()) < count)
    workers_.emplace_back([this] { worker_loop(); });
}

namespace {

[[nodiscard]] bool cancelled(const std::atomic<bool>* cancel) {
  return cancel && cancel->load(std::memory_order_relaxed);
}

}  // namespace

void ExecPool::parallel_for(std::int64_t n, int jobs,
                            const std::function<void(std::int64_t)>& fn,
                            const std::atomic<bool>* cancel) {
  if (n <= 0) return;
  jobs = std::clamp<int>(jobs, 1, kMaxWorkers + 1);
  if (jobs > n) jobs = static_cast<int>(n);
  if (jobs <= 1) {
    for (std::int64_t i = 0; i < n && !cancelled(cancel); ++i) fn(i);
    return;
  }
  std::lock_guard<std::mutex> launch_lock(launch_mu_);
  {
    std::lock_guard<std::mutex> lk(mu_);
    ensure_workers(jobs - 1);
    task_fn_ = &fn;
    task_cancel_ = cancel;
    task_n_ = n;
    task_next_.store(0, std::memory_order_relaxed);
    task_slots_ = jobs - 1;
    ++task_gen_;
  }
  work_cv_.notify_all();
  // The caller is one of the `jobs` threads.
  for (std::int64_t i;
       !cancelled(cancel) && (i = task_next_.fetch_add(1)) < n;)
    fn(i);
  // On cancellation, push the claim counter past n so the wait predicate
  // still completes once in-flight indices drain.
  if (cancelled(cancel)) task_next_.store(n, std::memory_order_relaxed);
  std::unique_lock<std::mutex> lk(mu_);
  done_cv_.wait(lk, [&] {
    return task_active_ == 0 && task_next_.load() >= task_n_;
  });
  // Close the launch so late-waking workers cannot claim a slot and read
  // a dangling fn pointer.
  task_slots_ = 0;
  task_fn_ = nullptr;
  task_cancel_ = nullptr;
}

void ExecPool::worker_loop() {
  std::uint64_t seen = 0;
  std::unique_lock<std::mutex> lk(mu_);
  while (true) {
    work_cv_.wait(lk, [&] {
      return shutdown_ || (task_gen_ != seen && task_slots_ > 0);
    });
    if (shutdown_) return;
    seen = task_gen_;
    --task_slots_;
    ++task_active_;
    const auto* fn = task_fn_;
    const auto* cancel = task_cancel_;
    const std::int64_t n = task_n_;
    lk.unlock();
    for (std::int64_t i;
         !cancelled(cancel) && (i = task_next_.fetch_add(1)) < n;)
      (*fn)(i);
    lk.lock();
    --task_active_;
    if (task_active_ == 0) done_cv_.notify_all();
  }
}

ExecPool::~ExecPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

}  // namespace cudanp::sim
