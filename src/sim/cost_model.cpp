#include "sim/cost_model.hpp"

#include <algorithm>
#include <cmath>

#include "support/diagnostics.hpp"

namespace cudanp::sim {

TimingBreakdown TimingModel::estimate(const KernelStats& stats,
                                      const Occupancy& occ) const {
  TimingBreakdown out;
  if (stats.blocks == 0) return out;
  if (occ.blocks_per_smx == 0)
    throw SimError("kernel cannot launch: occupancy is zero (" +
                   occ.limiting_factor + " limited)");

  const double blocks = static_cast<double>(stats.blocks);
  // Per-block averages.
  const double issue_per_block = stats.issue_slots / blocks;
  const double dram_per_block =
      static_cast<double>(stats.dram_transactions) / blocks;
  const double smem_per_block =
      static_cast<double>(stats.smem_accesses) / blocks;
  const double crit_per_block = stats.crit_path_cycles;  // avg block

  // Hardware distributes blocks across SMXs before stacking them, so a
  // grid smaller than (num_smx * blocks_per_smx) leaves each SMX with
  // fewer resident blocks than occupancy allows.
  const double resident = std::min<double>(
      occ.blocks_per_smx, std::ceil(blocks / spec_.num_smx));
  out.waves = std::ceil(blocks / (resident * spec_.num_smx));

  // Throughput terms: cycles for one SMX to retire one wave's resident
  // blocks.
  out.t_issue_cycles = resident * issue_per_block / spec_.issue_width;
  const double kBytesPerTransaction = 32.0;
  out.t_dram_cycles = resident * dram_per_block * kBytesPerTransaction /
                      spec_.dram_bytes_per_cycle_per_smx();
  // One warp-wide shared access (or conflict replay) per cycle per SMX.
  out.t_smem_cycles = resident * smem_per_block;

  // Latency term: resident blocks run concurrently, so a wave can never
  // finish faster than the slowest warp's dependency chain.
  out.t_crit_cycles = crit_per_block;

  const double wave_cycles =
      std::max({out.t_issue_cycles, out.t_dram_cycles, out.t_smem_cycles,
                out.t_crit_cycles});
  if (wave_cycles == out.t_crit_cycles)
    out.bound = "latency";
  if (wave_cycles == out.t_smem_cycles)
    out.bound = "smem";
  if (wave_cycles == out.t_dram_cycles)
    out.bound = "dram";
  if (wave_cycles == out.t_issue_cycles)
    out.bound = "issue";

  // Host-side launch overhead (~5 us), matching a typical CUDA launch.
  const double kLaunchOverheadSec = 5e-6;
  out.seconds = out.waves * wave_cycles / (spec_.core_clock_ghz * 1e9) +
                kLaunchOverheadSec;
  return out;
}

}  // namespace cudanp::sim
