#include "sim/interpreter.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <exception>
#include <limits>
#include <memory>
#include <sstream>
#include <unordered_map>
#include <utility>

#include "ir/printer.hpp"
#include "sim/binder.hpp"
#include "sim/exec_pool.hpp"
#include "sim/fault.hpp"
#include "sim/sanitizer.hpp"
#include "support/string_utils.hpp"

namespace cudanp::sim {

using namespace cudanp::ir;

namespace {

using Mask = std::vector<std::uint8_t>;
using Lanes = std::vector<Value>;

[[nodiscard]] bool any(const Mask& m) {
  for (auto b : m)
    if (b) return true;
  return false;
}

/// Per-variable storage within one block, indexed by the binder's slot id
/// (sim/binder.hpp) in a flat frame vector.
struct Slot {
  Type type;
  /// Register scalars & register/local arrays: per-lane storage
  /// (lane-major: lane * elems + idx). Shared arrays/scalars: one copy.
  Lanes data;
  /// Word offset inside the block's shared or local space (for bank /
  /// coalescing math).
  std::uint64_t base_word = 0;
  bool is_buffer_param = false;
  /// Scalar kernel argument: one shared copy, read-only.
  bool is_uniform_param = false;
  BufferId buffer = 0;
  /// False until the declaration (or param binding) executes; preserves
  /// the old map-absence "use of undeclared variable" semantics now that
  /// every slot exists up front.
  bool live = false;
  /// Sanitizer init bitmap, indexed like `data` (empty when the sanitizer
  /// is off, and for shared / buffer / uniform slots, which are shadowed
  /// elsewhere).
  std::vector<std::uint8_t> shadow;
};

/// Per-block hazard stream. Blocks never touch the shared SanitizerEngine
/// while executing (so the grid can run on several threads); they collect
/// reports locally, in execution order, and Interpreter::run replays the
/// streams through the engine in block-index order afterwards. That
/// replay reproduces the engine's dedupe, total count and error-limit
/// semantics exactly, at every job count.
struct BlockSanitizer {
  /// Options are read-only during execution; buffer shadow bitmaps are
  /// written element-wise, and well-formed kernels touch block-disjoint
  /// elements (like the data buffers themselves).
  SanitizerEngine* engine = nullptr;
  std::vector<HazardReport> reports;
};

class BlockExec {
 public:
  BlockExec(const DeviceSpec& spec, DeviceMemory& mem,
            const Interpreter::Options& opt, const BoundKernel& bound,
            const LaunchConfig& cfg, Dim3 block_idx, int resident_blocks,
            BlockSanitizer* san, std::int64_t flat_block = 0,
            std::int64_t max_steps =
                std::numeric_limits<std::int64_t>::max())
      : spec_(spec),
        mem_(mem),
        opt_(opt),
        bound_(bound),
        kernel_(*bound.kernel),
        cfg_(cfg),
        block_idx_(block_idx),
        flat_block_(flat_block),
        max_steps_(max_steps),
        nlanes_(static_cast<int>(cfg.block.count())),
        nwarps_((nlanes_ + spec.warp_size - 1) / spec.warp_size),
        l1_(spec.l1_cache_bytes / std::max(resident_blocks, 1),
            spec.l1_line_bytes) {
    warp_issue_.assign(static_cast<std::size_t>(nwarps_), 0.0);
    warp_latency_.assign(static_cast<std::size_t>(nwarps_), 0.0);
    warp_pending_.assign(static_cast<std::size_t>(nwarps_), 0.0);
    returned_.assign(static_cast<std::size_t>(nlanes_), 0);
    san_ = san;
    if (san_) {
      warp_gen_.assign(static_cast<std::size_t>(nwarps_), 0);
      smem_shadow_.reserve(
          static_cast<std::size_t>(bound.shared_words_bound));
    }
    frame_.resize(bound.num_slots());
    init_geometry();
    bind_params();
  }

  KernelStats run() {
    if (opt_.fault && opt_.fault->should_stall(flat_block_)) stall();
    Mask mask(static_cast<std::size_t>(nlanes_), 1);
    exec_block(*kernel_.body, mask);
    KernelStats s;
    s.blocks = 1;
    s.warps = nwarps_;
    s.global_transactions = global_transactions_;
    s.local_transactions = local_transactions_;
    s.local_l1_misses = local_l1_misses_;
    s.dram_transactions = dram_transactions_;
    s.smem_accesses = smem_accesses_;
    s.smem_replays = smem_replays_;
    s.shfl_ops = shfl_ops_;
    s.sync_ops = sync_ops_;
    s.divergent_branches = divergent_branches_;
    double crit = 0;
    for (int w = 0; w < nwarps_; ++w) {
      s.issue_slots += warp_issue_[static_cast<std::size_t>(w)];
      crit = std::max(crit, warp_issue_[static_cast<std::size_t>(w)] +
                                warp_latency_[static_cast<std::size_t>(w)] /
                                    opt_.warp_mlp);
    }
    s.crit_path_cycles = crit;
    return s;
  }

 private:
  // ---------------- geometry lane caches ----------------
  /// Precomputes the 12 builtin geometry vectors once per block, so an
  /// executed threadIdx/blockDim/... reference is a plain vector copy.
  void init_geometry() {
    for (int g = 0; g < kGeomCount; ++g)
      geom_[g].assign(static_cast<std::size_t>(nlanes_), Value::of_int(0));
    for (int l = 0; l < nlanes_; ++l) {
      auto li = static_cast<std::size_t>(l);
      geom_[kGeomThreadIdxX][li] = Value::of_int(l % cfg_.block.x);
      geom_[kGeomThreadIdxY][li] =
          Value::of_int((l / cfg_.block.x) % cfg_.block.y);
      geom_[kGeomThreadIdxZ][li] =
          Value::of_int(l / (cfg_.block.x * cfg_.block.y));
    }
    auto fill = [&](int g, int v) {
      geom_[g].assign(static_cast<std::size_t>(nlanes_), Value::of_int(v));
    };
    fill(kGeomBlockIdxX, block_idx_.x);
    fill(kGeomBlockIdxY, block_idx_.y);
    fill(kGeomBlockIdxZ, block_idx_.z);
    fill(kGeomBlockDimX, cfg_.block.x);
    fill(kGeomBlockDimY, cfg_.block.y);
    fill(kGeomBlockDimZ, cfg_.block.z);
    fill(kGeomGridDimX, cfg_.grid.x);
    fill(kGeomGridDimY, cfg_.grid.y);
    fill(kGeomGridDimZ, cfg_.grid.z);
  }

  // ---------------- parameter binding ----------------
  void bind_params() {
    if (cfg_.args.size() != kernel_.params.size())
      throw SimError("kernel '" + kernel_.name + "' expects " +
                     std::to_string(kernel_.params.size()) + " args, got " +
                     std::to_string(cfg_.args.size()));
    for (std::size_t i = 0; i < kernel_.params.size(); ++i) {
      const Param& p = kernel_.params[i];
      Slot& slot = frame_[i];  // binder assigns params slots 0..n-1
      slot.type = p.type;
      if (p.type.is_pointer) {
        const auto* buf = std::get_if<BufferId>(&cfg_.args[i]);
        if (!buf)
          throw SimError("arg " + std::to_string(i) + " ('" + p.name +
                         "') must be a buffer");
        slot.is_buffer_param = true;
        slot.buffer = *buf;
      } else {
        const auto* v = std::get_if<Value>(&cfg_.args[i]);
        if (!v)
          throw SimError("arg " + std::to_string(i) + " ('" + p.name +
                         "') must be a scalar");
        Value coerced = p.type.scalar == ScalarType::kFloat
                            ? Value::of_float(v->as_f()).to_f32()
                            : Value::of_int(v->as_i());
        slot.is_uniform_param = true;
        slot.data.assign(1, coerced);  // uniform scalar, one copy
      }
      slot.live = true;
    }
  }

  // ---------------- cost charging ----------------
  /// Iterates warps that have >= 1 active lane.
  template <typename Fn>
  void for_each_active_warp(const Mask& mask, Fn&& fn) {
    for (int w = 0; w < nwarps_; ++w) {
      int lo = w * spec_.warp_size;
      int hi = std::min(lo + spec_.warp_size, nlanes_);
      bool active = false;
      for (int l = lo; l < hi; ++l) {
        if (mask[static_cast<std::size_t>(l)]) {
          active = true;
          break;
        }
      }
      if (active) fn(w, lo, hi);
    }
  }

  void charge_issue(const Mask& mask, double weight) {
    for_each_active_warp(mask, [&](int w, int, int) {
      warp_issue_[static_cast<std::size_t>(w)] += weight;
    });
  }

  void charge_latency(int warp, double cycles) {
    warp_pending_[static_cast<std::size_t>(warp)] =
        std::max(warp_pending_[static_cast<std::size_t>(warp)], cycles);
  }

  // ---------------- watchdog ----------------
  /// Charges one interpreted statement (or loop back-edge) against the
  /// block's step budget and fires the fault-injection hook. Deterministic
  /// per block — the count never depends on job scheduling.
  void count_step(const SourceLoc& loc) {
    ++steps_;
    if (opt_.fault) opt_.fault->maybe_fault(flat_block_, steps_, loc);
    if (steps_ > max_steps_) throw make_watchdog_error(loc);
  }

  [[nodiscard]] WatchdogError make_watchdog_error(const SourceLoc& loc) const {
    std::ostringstream os;
    os << "watchdog: block (" << block_idx_.x << "," << block_idx_.y << ","
       << block_idx_.z << ") exceeded its step budget of " << max_steps_
       << " interpreted statements at " << loc.str();
    if (!loop_stack_.empty()) {
      os << "; loop back-edges (innermost first):";
      std::size_t shown = 0;
      for (auto it = loop_stack_.rbegin();
           it != loop_stack_.rend() && shown < 4; ++it, ++shown)
        os << " " << it->first.str() << " x" << it->second;
    }
    return WatchdogError(os.str(), loc, steps_);
  }

  /// Injected stall (FaultPlan::stall_block): burns budget until the
  /// watchdog trips. A disabled watchdog would hang forever, so that
  /// combination degrades to a plain injected SimError instead.
  [[noreturn]] void stall() {
    if (max_steps_ == std::numeric_limits<std::int64_t>::max())
      throw SimError(
          "injected stall: watchdog disabled, aborting instead of hanging");
    for (;;) count_step(kernel_.body->loc());
  }

  /// Tracks the enclosing loops' back-edge counts for watchdog reports.
  struct LoopScope {
    std::vector<std::pair<SourceLoc, std::int64_t>>& stack;
    explicit LoopScope(
        std::vector<std::pair<SourceLoc, std::int64_t>>& s, SourceLoc loc)
        : stack(s) {
      stack.emplace_back(loc, 0);
    }
    ~LoopScope() { stack.pop_back(); }
  };

  void begin_leaf_stmt() {
    std::fill(warp_pending_.begin(), warp_pending_.end(), 0.0);
  }
  void end_leaf_stmt() {
    for (int w = 0; w < nwarps_; ++w)
      warp_latency_[static_cast<std::size_t>(w)] +=
          warp_pending_[static_cast<std::size_t>(w)];
  }

  // ---------------- memory access paths ----------------
  /// One warp-wide global access; `idx` are element indices.
  void charge_global(const DeviceBuffer& buf, const Lanes& idx,
                     const Mask& mask) {
    std::int64_t esize = Type::scalar_size_bytes(buf.type());
    for_each_active_warp(mask, [&](int w, int lo, int hi) {
      std::uint64_t addrs[32];
      std::uint8_t act[32];
      int n = hi - lo;
      for (int l = lo; l < hi; ++l) {
        act[l - lo] = mask[static_cast<std::size_t>(l)];
        addrs[l - lo] =
            buf.base_addr() +
            static_cast<std::uint64_t>(idx[static_cast<std::size_t>(l)].as_i()) *
                static_cast<std::uint64_t>(esize);
      }
      if (buf.is_constant()) {
        // Constant cache: distinct words serialize, identical broadcast.
        int replays = smem_replays({addrs, static_cast<std::size_t>(n)},
                                   {act, static_cast<std::size_t>(n)}, 1);
        smem_accesses_ += replays;  // books constant traffic with smem
        warp_issue_[static_cast<std::size_t>(w)] +=
            opt_.weights.mem_issue * replays;
        charge_latency(w, spec_.smem_latency_cycles);
        return;
      }
      int trans = coalesced_transactions({addrs, static_cast<std::size_t>(n)},
                                         {act, static_cast<std::size_t>(n)},
                                         32);
      global_transactions_ += trans;
      dram_transactions_ += trans;
      warp_issue_[static_cast<std::size_t>(w)] += opt_.weights.mem_issue;
      charge_latency(w, spec_.dram_latency_cycles);
    });
  }

  void charge_shared(const Slot& slot, const Lanes& flat_idx,
                     const Mask& mask) {
    for_each_active_warp(mask, [&](int w, int lo, int hi) {
      std::uint64_t words[32];
      std::uint8_t act[32];
      int n = hi - lo;
      for (int l = lo; l < hi; ++l) {
        act[l - lo] = mask[static_cast<std::size_t>(l)];
        words[l - lo] =
            slot.base_word +
            static_cast<std::uint64_t>(
                flat_idx[static_cast<std::size_t>(l)].as_i());
      }
      int replays =
          smem_replays({words, static_cast<std::size_t>(n)},
                       {act, static_cast<std::size_t>(n)},
                       static_cast<int>(spec_.shared_mem_banks));
      smem_accesses_ += replays;
      smem_replays_ += replays - 1;
      warp_issue_[static_cast<std::size_t>(w)] += opt_.weights.mem_issue;
      charge_latency(w, spec_.smem_latency_cycles + (replays - 1));
    });
  }

  void charge_local(const Slot& slot, const Lanes& elem_idx,
                    const Mask& mask) {
    // Local memory is interleaved per thread: addr(lane, e) =
    // local_base + (e * nlanes + lane) * 4, matching the CUDA ABI layout
    // that makes uniform-index accesses coalesced.
    for_each_active_warp(mask, [&](int w, int lo, int hi) {
      std::uint64_t addrs[32];
      std::uint8_t act[32];
      int n = hi - lo;
      for (int l = lo; l < hi; ++l) {
        act[l - lo] = mask[static_cast<std::size_t>(l)];
        std::uint64_t e = static_cast<std::uint64_t>(
            elem_idx[static_cast<std::size_t>(l)].as_i());
        addrs[l - lo] = kLocalSpaceBase + (slot.base_word +
                        e * static_cast<std::uint64_t>(nlanes_) +
                        static_cast<std::uint64_t>(l)) * 4;
      }
      // Unique 128B lines of this access probe the L1.
      std::uint64_t lines[32];
      int nlines = 0;
      for (int k = 0; k < n; ++k) {
        if (!act[k]) continue;
        std::uint64_t line = addrs[k] / 128;
        bool seen = false;
        for (int j = 0; j < nlines; ++j)
          if (lines[j] == line) {
            seen = true;
            break;
          }
        if (!seen) lines[nlines++] = line;
      }
      bool all_hit = true;
      for (int j = 0; j < nlines; ++j) {
        if (!l1_.access(lines[j] * 128)) {
          all_hit = false;
          dram_transactions_ += 4;  // 128B line refill in 32B transactions
          ++local_l1_misses_;
        }
      }
      local_transactions_ += nlines;
      warp_issue_[static_cast<std::size_t>(w)] += opt_.weights.mem_issue;
      charge_latency(w, all_hit ? spec_.l1_latency_cycles
                                : spec_.dram_latency_cycles);
    });
  }

  // ---------------- sanitizer hooks ----------------
  /// Shadow state for one shared-memory word.
  struct SharedShadow {
    bool init = false;
    // Same-vector-access write tracking (lockstep-mode races).
    std::uint64_t write_access = 0;
    int writer_lane = -1;
    Value written;
    // Barrier-interval tracking (portable-mode races). A warp's barrier
    // generation is its arrival count; warp id -1 = none, -2 = several.
    std::uint64_t write_gen = 0;
    int writer_warp = -1;
    std::uint64_t read_gen = 0;
    int reader_warp = -1;
    SourceLoc write_loc;
  };

  [[nodiscard]] bool portable_races() const {
    return san_->engine->options().race_mode ==
           SanitizerEngine::RaceMode::kPortable;
  }

  [[nodiscard]] static bool value_eq(Value a, Value b) {
    if (a.tag != b.tag) return a.as_f() == b.as_f();
    return a.is_float() ? a.f == b.f : a.i == b.i;
  }

  void san_report(HazardKind kind, SourceLoc loc, int lane,
                  std::string msg) {
    HazardReport r;
    r.kind = kind;
    r.kernel = kernel_.name;
    r.block = block_idx_;
    r.thread = lane;
    r.loc = loc;
    r.message = std::move(msg);
    // Collected locally; Interpreter::run replays block streams through
    // the engine in block-index order (dedupe / limit applied there).
    san_->reports.push_back(std::move(r));
  }

  void note_shared_write(const Slot& slot, const std::string& name,
                         std::size_t idx, int lane, Value val,
                         SourceLoc loc) {
    SharedShadow& sh = smem_shadow_[slot.base_word + idx];
    int w = lane / spec_.warp_size;
    std::uint64_t gen = warp_gen_[static_cast<std::size_t>(w)];
    if (sh.write_access == access_seq_ && sh.writer_lane != lane &&
        !value_eq(sh.written, val)) {
      san_report(HazardKind::kSharedRace, loc, lane,
                 "write-write race on shared '" + name + "[" +
                     std::to_string(idx) + "]': lanes " +
                     std::to_string(sh.writer_lane) + " and " +
                     std::to_string(lane) +
                     " store different values in the same instruction");
    } else if (portable_races() && sh.writer_warp >= 0 &&
               sh.write_gen == gen && sh.writer_warp != w &&
               !value_eq(sh.written, val)) {
      san_report(HazardKind::kSharedRace, loc, lane,
                 "write-write race on shared '" + name + "[" +
                     std::to_string(idx) + "]' with warp " +
                     std::to_string(sh.writer_warp) + "'s store at " +
                     sh.write_loc.str() + " in the same barrier interval");
    }
    if (portable_races() && sh.reader_warp != -1 && sh.read_gen == gen &&
        sh.reader_warp != w) {
      san_report(HazardKind::kSharedRace, loc, lane,
                 "read-write race on shared '" + name + "[" +
                     std::to_string(idx) +
                     "]': store overlaps another warp's read in the same "
                     "barrier interval");
    }
    sh.init = true;
    sh.write_access = access_seq_;
    sh.writer_lane = lane;
    sh.written = val;
    sh.write_gen = gen;
    sh.writer_warp = w;
    sh.write_loc = loc;
  }

  void note_shared_read(const Slot& slot, const std::string& name,
                        std::size_t idx, int lane, SourceLoc loc) {
    SharedShadow& sh = smem_shadow_[slot.base_word + idx];
    int w = lane / spec_.warp_size;
    std::uint64_t gen = warp_gen_[static_cast<std::size_t>(w)];
    if (!sh.init && shfl_arg_depth_ == 0)
      san_report(HazardKind::kUninitRead, loc, lane,
                 "read of uninitialized shared memory '" + name + "[" +
                     std::to_string(idx) + "]'");
    if (portable_races() && sh.writer_warp >= 0 && sh.write_gen == gen &&
        sh.writer_warp != w) {
      san_report(HazardKind::kSharedRace, loc, lane,
                 "read-write race on shared '" + name + "[" +
                     std::to_string(idx) + "]': word written by warp " +
                     std::to_string(sh.writer_warp) + " at " +
                     sh.write_loc.str() + " in the same barrier interval");
    }
    if (sh.reader_warp == -1 || sh.read_gen != gen)
      sh.reader_warp = w;
    else if (sh.reader_warp != w)
      sh.reader_warp = -2;
    sh.read_gen = gen;
  }

  /// Kepler's bar.sync counts *warp* arrivals: a warp arrives when >= 1 of
  /// its lanes executes the barrier, so partial masks inside one warp are
  /// fine, but a warp whose live lanes all branch around the barrier never
  /// arrives and the block deadlocks on real hardware.
  void note_barrier(SourceLoc loc, const Mask& mask) {
    int arrived = 0;
    int absent_warp = -1;
    int absent_lane = -1;
    for (int w = 0; w < nwarps_; ++w) {
      int lo = w * spec_.warp_size;
      int hi = std::min(lo + spec_.warp_size, nlanes_);
      bool active = false;
      int live = -1;
      for (int l = lo; l < hi; ++l) {
        if (mask[static_cast<std::size_t>(l)]) active = true;
        if (!returned_[static_cast<std::size_t>(l)] && live < 0) live = l;
      }
      if (active) {
        ++warp_gen_[static_cast<std::size_t>(w)];
        ++arrived;
      } else if (live >= 0 && absent_warp < 0) {
        absent_warp = w;
        absent_lane = live;
      }
    }
    if (arrived > 0 && absent_warp >= 0)
      san_report(HazardKind::kBarrierDivergence, loc, absent_lane,
                 "__syncthreads reached by " + std::to_string(arrived) +
                     " of " + std::to_string(nwarps_) +
                     " warps; warp " + std::to_string(absent_warp) +
                     " has live threads that never arrive (deadlock on "
                     "real hardware)");
  }

  // ---------------- variable helpers ----------------
  /// Resolves a bound slot id to live storage. Geometry codes land here
  /// only from contexts where a geometry name is invalid (array base,
  /// assignment target) and get the same "undeclared" error the old map
  /// lookup produced.
  Slot& slot_at(std::int32_t s, const std::string& name, SourceLoc loc) {
    if (s >= 0) {
      Slot& slot = frame_[static_cast<std::size_t>(s)];
      if (slot.live) return slot;
    } else if (s == kSlotUnbound) {
      throw SimError("internal: unbound reference to '" + name +
                     "' (kernel AST modified after slot binding)");
    }
    throw SimError("use of undeclared variable '" + name + "' at " +
                   loc.str());
  }

  /// Declares (or re-declares, for loop bodies) a variable.
  Slot& declare(const DeclStmt& d) {
    if (d.sim_slot < 0)
      throw SimError("internal: unbound declaration of '" + d.name +
                     "' (kernel AST modified after slot binding)");
    Slot& slot = frame_[static_cast<std::size_t>(d.sim_slot)];
    if (!slot.live) {
      slot.type = d.type;
      if (d.type.space == AddrSpace::kShared) {
        slot.data.assign(static_cast<std::size_t>(d.type.element_count()),
                         Value{});
        slot.base_word = smem_word_cursor_;
        smem_word_cursor_ +=
            static_cast<std::uint64_t>(d.type.element_count());
      } else if (d.type.is_array()) {  // local / register / constant array
        slot.data.assign(static_cast<std::size_t>(d.type.element_count() *
                                                  nlanes_),
                         Value{});
        slot.base_word = local_word_cursor_;
        local_word_cursor_ +=
            static_cast<std::uint64_t>(d.type.element_count());
      } else {  // register scalar
        slot.data.assign(static_cast<std::size_t>(nlanes_), Value{});
      }
      if (san_ && d.type.space != AddrSpace::kShared)
        slot.shadow.assign(slot.data.size(), 0);
      slot.live = true;
    }
    return slot;
  }

  [[nodiscard]] Value coerce(Value v, ScalarType to) const {
    switch (to) {
      case ScalarType::kFloat: return v.to_f32();
      case ScalarType::kInt:
      case ScalarType::kBool: return Value::of_int(v.as_i());
      case ScalarType::kVoid: return v;
    }
    return v;
  }

  // ---------------- expression evaluation ----------------
  Lanes eval(const Expr& e, const Mask& mask) {
    switch (e.kind()) {
      case ExprKind::kIntLit:
        return Lanes(static_cast<std::size_t>(nlanes_),
                     Value::of_int(static_cast<const IntLit&>(e).value));
      case ExprKind::kFloatLit:
        return Lanes(
            static_cast<std::size_t>(nlanes_),
            Value::of_float(static_cast<const FloatLit&>(e).value).to_f32());
      case ExprKind::kVarRef:
        return eval_varref(static_cast<const VarRef&>(e), mask);
      case ExprKind::kArrayIndex:
        return eval_index(static_cast<const ArrayIndex&>(e), mask,
                          /*store=*/nullptr);
      case ExprKind::kBinary:
        return eval_binary(static_cast<const BinaryExpr&>(e), mask);
      case ExprKind::kUnary: {
        const auto& u = static_cast<const UnaryExpr&>(e);
        Lanes v = eval(*u.operand, mask);
        charge_issue(mask, opt_.weights.alu);
        for (int l = 0; l < nlanes_; ++l) {
          if (!mask[static_cast<std::size_t>(l)]) continue;
          Value& x = v[static_cast<std::size_t>(l)];
          if (u.op == UnOp::kNeg)
            x = x.is_float() ? Value::of_float(-x.f) : Value::of_int(-x.i);
          else
            x = Value::of_int(x.truthy() ? 0 : 1);
        }
        return v;
      }
      case ExprKind::kCall:
        return eval_call(static_cast<const CallExpr&>(e), mask);
      case ExprKind::kTernary: {
        const auto& t = static_cast<const TernaryExpr&>(e);
        Lanes c = eval(*t.cond, mask);
        Lanes a = eval(*t.then_value, mask);
        Lanes b = eval(*t.else_value, mask);
        charge_issue(mask, opt_.weights.alu);
        for (int l = 0; l < nlanes_; ++l) {
          if (!mask[static_cast<std::size_t>(l)]) continue;
          if (!c[static_cast<std::size_t>(l)].truthy())
            a[static_cast<std::size_t>(l)] = b[static_cast<std::size_t>(l)];
        }
        return a;
      }
      case ExprKind::kCast: {
        const auto& c = static_cast<const CastExpr&>(e);
        Lanes v = eval(*c.operand, mask);
        charge_issue(mask, opt_.weights.alu);
        for (int l = 0; l < nlanes_; ++l) {
          if (!mask[static_cast<std::size_t>(l)]) continue;
          v[static_cast<std::size_t>(l)] =
              coerce(v[static_cast<std::size_t>(l)], c.to);
        }
        return v;
      }
    }
    throw SimError("unreachable expression kind");
  }

  Lanes eval_varref(const VarRef& v, const Mask& mask) {
    if (slot_is_geometry(v.sim_slot))
      return geom_[slot_geometry_code(v.sim_slot)];
    Slot& slot = slot_at(v.sim_slot, v.name, v.loc());
    if (slot.is_buffer_param)
      throw SimError("pointer '" + v.name +
                     "' used as a value (only indexing is supported)");
    if (slot.type.is_array())
      throw SimError("array '" + v.name + "' used without an index");
    if (slot.is_uniform_param)
      return Lanes(static_cast<std::size_t>(nlanes_), slot.data[0]);
    if (san_ && shfl_arg_depth_ == 0 && !slot.shadow.empty()) {
      for (int l = 0; l < nlanes_; ++l) {
        if (!mask[static_cast<std::size_t>(l)]) continue;
        if (!slot.shadow[static_cast<std::size_t>(l)]) {
          san_report(HazardKind::kUninitRead, v.loc(), l,
                     "read of uninitialized variable '" + v.name + "'");
          break;  // one report per access; dedupe absorbs repeats
        }
      }
    }
    return slot.data;  // register scalar: copy per-lane values
  }

  /// Flattens a (possibly multi-dim) index list; bounds-checks each dim.
  Lanes flatten_index(const ArrayIndex& ai, const Slot& slot,
                      const Mask& mask) {
    const auto& dims = slot.type.array_dims;
    if (ai.indices.size() != dims.size())
      throw SimError("array '" +
                     static_cast<const VarRef&>(*ai.base).name + "' has " +
                     std::to_string(dims.size()) + " dims, indexed with " +
                     std::to_string(ai.indices.size()) + " at " +
                     ai.loc().str());
    Lanes flat(static_cast<std::size_t>(nlanes_), Value::of_int(0));
    for (std::size_t d = 0; d < dims.size(); ++d) {
      Lanes idx = eval(*ai.indices[d], mask);
      if (d > 0) charge_issue(mask, opt_.weights.alu);  // index math
      for (int l = 0; l < nlanes_; ++l) {
        if (!mask[static_cast<std::size_t>(l)]) continue;
        std::int64_t i = idx[static_cast<std::size_t>(l)].as_i();
        if (i < 0 || i >= dims[d])
          throw SimError("index " + std::to_string(i) + " out of bounds [0," +
                         std::to_string(dims[d]) + ") for array at " +
                         ai.loc().str());
        auto& f = flat[static_cast<std::size_t>(l)];
        f = Value::of_int(f.as_i() * dims[d] + i);
      }
    }
    return flat;
  }

  /// Load (store == nullptr) or store (store != nullptr provides values).
  Lanes eval_index(const ArrayIndex& ai, const Mask& mask,
                   const Lanes* store) {
    if (ai.base->kind() != ExprKind::kVarRef)
      throw SimError("array base must be a variable at " + ai.loc().str());
    const auto& base = static_cast<const VarRef&>(*ai.base);
    const std::string& name = base.name;
    Slot& slot = slot_at(base.sim_slot, name, ai.loc());

    if (slot.is_buffer_param) {
      if (ai.indices.size() != 1)
        throw SimError("pointer '" + name + "' requires exactly one index");
      Lanes idx = eval(*ai.indices[0], mask);
      DeviceBuffer& buf = mem_.buffer(slot.buffer);
      charge_global(buf, idx, mask);
      std::vector<std::uint8_t>* bsh =
          san_ ? san_->engine->buffer_shadow(slot.buffer) : nullptr;
      Lanes out(static_cast<std::size_t>(nlanes_));
      for (int l = 0; l < nlanes_; ++l) {
        if (!mask[static_cast<std::size_t>(l)]) continue;
        std::size_t i = static_cast<std::size_t>(
            idx[static_cast<std::size_t>(l)].as_i());
        if (store) {
          buf.store(i, coerce((*store)[static_cast<std::size_t>(l)],
                              buf.type()));
          if (bsh && i < bsh->size()) (*bsh)[i] = 1;
        } else {
          if (bsh && shfl_arg_depth_ == 0 && i < bsh->size() && !(*bsh)[i])
            san_report(HazardKind::kUninitRead, ai.loc(), l,
                       "read of uninitialized global buffer '" + name +
                           "[" + std::to_string(i) + "]'");
          out[static_cast<std::size_t>(l)] = buf.load(i);
        }
      }
      return out;
    }

    if (!slot.type.is_array())
      throw SimError("'" + name + "' is not an array at " + ai.loc().str());

    Lanes flat = flatten_index(ai, slot, mask);
    switch (slot.type.space) {
      case AddrSpace::kShared: {
        charge_shared(slot, flat, mask);
        if (san_) ++access_seq_;
        Lanes out(static_cast<std::size_t>(nlanes_));
        for (int l = 0; l < nlanes_; ++l) {
          if (!mask[static_cast<std::size_t>(l)]) continue;
          std::size_t i = static_cast<std::size_t>(
              flat[static_cast<std::size_t>(l)].as_i());
          if (store) {
            Value val = coerce((*store)[static_cast<std::size_t>(l)],
                               slot.type.scalar);
            if (san_) note_shared_write(slot, name, i, l, val, ai.loc());
            slot.data[i] = val;
          } else {
            if (san_) note_shared_read(slot, name, i, l, ai.loc());
            out[static_cast<std::size_t>(l)] = slot.data[i];
          }
        }
        return out;
      }
      case AddrSpace::kLocal:
      case AddrSpace::kRegister:
      case AddrSpace::kConstant: {
        if (slot.type.space == AddrSpace::kLocal) {
          charge_local(slot, flat, mask);
        } else if (slot.type.space == AddrSpace::kConstant) {
          // Constant cache broadcasts one word per cycle: lanes reading
          // distinct words serialize (paper Sec. 3.4's intra-warp hazard).
          for_each_active_warp(mask, [&](int w, int lo, int hi) {
            std::uint64_t words[32];
            std::uint8_t act[32];
            int n = hi - lo;
            for (int l = lo; l < hi; ++l) {
              act[l - lo] = mask[static_cast<std::size_t>(l)];
              words[l - lo] = static_cast<std::uint64_t>(
                  flat[static_cast<std::size_t>(l)].as_i());
            }
            int replays = smem_replays({words, static_cast<std::size_t>(n)},
                                       {act, static_cast<std::size_t>(n)}, 1);
            warp_issue_[static_cast<std::size_t>(w)] +=
                opt_.weights.mem_issue * replays;
            charge_latency(w, spec_.smem_latency_cycles);
          });
        } else {
          charge_issue(mask, opt_.weights.alu);  // register-file access
        }
        std::int64_t elems = slot.type.element_count();
        Lanes out(static_cast<std::size_t>(nlanes_));
        for (int l = 0; l < nlanes_; ++l) {
          if (!mask[static_cast<std::size_t>(l)]) continue;
          std::size_t i = static_cast<std::size_t>(
              static_cast<std::int64_t>(l) * elems +
              flat[static_cast<std::size_t>(l)].as_i());
          if (store) {
            slot.data[i] = coerce((*store)[static_cast<std::size_t>(l)],
                                  slot.type.scalar);
            if (!slot.shadow.empty()) slot.shadow[i] = 1;
          } else {
            if (san_ && shfl_arg_depth_ == 0 && !slot.shadow.empty() &&
                !slot.shadow[i])
              san_report(
                  HazardKind::kUninitRead, ai.loc(), l,
                  "read of uninitialized array element '" + name + "[" +
                      std::to_string(
                          flat[static_cast<std::size_t>(l)].as_i()) +
                      "]'");
            out[static_cast<std::size_t>(l)] = slot.data[i];
          }
        }
        return out;
      }
      case AddrSpace::kGlobal:
        break;
    }
    throw SimError("unsupported address space for array '" + name + "'");
  }

  Lanes eval_binary(const BinaryExpr& b, const Mask& mask) {
    Lanes lhs = eval(*b.lhs, mask);
    Lanes rhs = eval(*b.rhs, mask);
    double w = opt_.weights.alu;
    if (b.op == BinOp::kDiv || b.op == BinOp::kMod) {
      // Int div/mod and float div are multi-cycle.
      w = opt_.weights.idiv_imod;
      if (b.op == BinOp::kDiv &&
          (lhs[first_active(mask)].is_float() ||
           rhs[first_active(mask)].is_float()))
        w = opt_.weights.fdiv_sqrt_transcendental;
    }
    charge_issue(mask, w);
    Lanes out(static_cast<std::size_t>(nlanes_));
    for (int l = 0; l < nlanes_; ++l) {
      if (!mask[static_cast<std::size_t>(l)]) continue;
      out[static_cast<std::size_t>(l)] =
          apply_binop(b.op, lhs[static_cast<std::size_t>(l)],
                      rhs[static_cast<std::size_t>(l)], b.loc());
    }
    return out;
  }

  [[nodiscard]] std::size_t first_active(const Mask& mask) const {
    for (int l = 0; l < nlanes_; ++l)
      if (mask[static_cast<std::size_t>(l)])
        return static_cast<std::size_t>(l);
    return 0;
  }

  static Value apply_binop(BinOp op, Value a, Value b, SourceLoc loc) {
    bool fl = a.is_float() || b.is_float();
    switch (op) {
      case BinOp::kAdd:
        return fl ? Value::of_float(a.as_f() + b.as_f()).to_f32()
                  : Value::of_int(a.i + b.i);
      case BinOp::kSub:
        return fl ? Value::of_float(a.as_f() - b.as_f()).to_f32()
                  : Value::of_int(a.i - b.i);
      case BinOp::kMul:
        return fl ? Value::of_float(a.as_f() * b.as_f()).to_f32()
                  : Value::of_int(a.i * b.i);
      case BinOp::kDiv:
        if (fl) return Value::of_float(a.as_f() / b.as_f()).to_f32();
        if (b.i == 0) throw SimError("integer division by zero at " + loc.str());
        return Value::of_int(a.i / b.i);
      case BinOp::kMod:
        if (fl) throw SimError("operator % requires integers at " + loc.str());
        if (b.i == 0) throw SimError("modulo by zero at " + loc.str());
        return Value::of_int(a.i % b.i);
      case BinOp::kLt: return Value::of_int(fl ? a.as_f() < b.as_f() : a.i < b.i);
      case BinOp::kLe: return Value::of_int(fl ? a.as_f() <= b.as_f() : a.i <= b.i);
      case BinOp::kGt: return Value::of_int(fl ? a.as_f() > b.as_f() : a.i > b.i);
      case BinOp::kGe: return Value::of_int(fl ? a.as_f() >= b.as_f() : a.i >= b.i);
      case BinOp::kEq: return Value::of_int(fl ? a.as_f() == b.as_f() : a.i == b.i);
      case BinOp::kNe: return Value::of_int(fl ? a.as_f() != b.as_f() : a.i != b.i);
      case BinOp::kLAnd: return Value::of_int(a.truthy() && b.truthy());
      case BinOp::kLOr: return Value::of_int(a.truthy() || b.truthy());
      case BinOp::kBitAnd: return Value::of_int(a.as_i() & b.as_i());
      case BinOp::kBitOr: return Value::of_int(a.as_i() | b.as_i());
      case BinOp::kBitXor: return Value::of_int(a.as_i() ^ b.as_i());
      case BinOp::kShl: return Value::of_int(a.as_i() << b.as_i());
      case BinOp::kShr: return Value::of_int(a.as_i() >> b.as_i());
    }
    throw SimError("unreachable binop");
  }

  Lanes eval_call(const CallExpr& c, const Mask& mask) {
    const std::string& f = c.callee;
    // Dispatch on the binder's integer annotation; the string resolution
    // only runs for nodes created after binding (mutated AST).
    Builtin b = c.sim_builtin == kBuiltinUnset
                    ? resolve_builtin(f)
                    : static_cast<Builtin>(c.sim_builtin);

    // Unary math builtins.
    auto unary_math = [&](double (*fn)(double), bool sfu) -> Lanes {
      if (c.args.size() != 1)
        throw SimError(f + " expects 1 argument at " + c.loc().str());
      Lanes v = eval(*c.args[0], mask);
      charge_issue(mask, sfu ? opt_.weights.fdiv_sqrt_transcendental
                             : opt_.weights.alu);
      for (int l = 0; l < nlanes_; ++l) {
        if (!mask[static_cast<std::size_t>(l)]) continue;
        v[static_cast<std::size_t>(l)] =
            Value::of_float(fn(v[static_cast<std::size_t>(l)].as_f()))
                .to_f32();
      }
      return v;
    };

    switch (b) {
      case Builtin::kSyncthreads: {
        ++sync_ops_;
        charge_issue(mask, opt_.weights.sync);
        for_each_active_warp(mask, [&](int w, int, int) {
          charge_latency(w, spec_.sync_latency_cycles);
        });
        if (san_) note_barrier(c.loc(), mask);
        return Lanes(static_cast<std::size_t>(nlanes_), Value::of_int(0));
      }
      case Builtin::kShfl:
      case Builtin::kShflUp:
      case Builtin::kShflDown:
      case Builtin::kShflXor:
        return eval_shfl(c, b, mask);
      case Builtin::kSqrt:
        return unary_math([](double x) { return std::sqrt(x); }, true);
      case Builtin::kFabs:
        return unary_math([](double x) { return std::fabs(x); }, false);
      case Builtin::kExp:
        return unary_math([](double x) { return std::exp(x); }, true);
      case Builtin::kLog:
        return unary_math([](double x) { return std::log(x); }, true);
      case Builtin::kSin:
        return unary_math([](double x) { return std::sin(x); }, true);
      case Builtin::kCos:
        return unary_math([](double x) { return std::cos(x); }, true);
      case Builtin::kFloor:
        return unary_math([](double x) { return std::floor(x); }, false);
      case Builtin::kRsqrt:
        return unary_math([](double x) { return 1.0 / std::sqrt(x); }, true);
      case Builtin::kAbs: {
        if (c.args.size() != 1)
          throw SimError("abs expects 1 argument at " + c.loc().str());
        Lanes v = eval(*c.args[0], mask);
        charge_issue(mask, opt_.weights.alu);
        for (int l = 0; l < nlanes_; ++l) {
          if (!mask[static_cast<std::size_t>(l)]) continue;
          Value& x = v[static_cast<std::size_t>(l)];
          x = x.is_float() ? Value::of_float(std::fabs(x.f))
                           : Value::of_int(std::abs(x.i));
        }
        return v;
      }
      case Builtin::kMin:
      case Builtin::kMax:
      case Builtin::kFminf:
      case Builtin::kFmaxf:
      case Builtin::kPowf: {
        if (c.args.size() != 2)
          throw SimError(f + " expects 2 arguments at " + c.loc().str());
        Lanes av = eval(*c.args[0], mask);
        Lanes bv = eval(*c.args[1], mask);
        charge_issue(mask, b == Builtin::kPowf
                               ? 2 * opt_.weights.fdiv_sqrt_transcendental
                               : opt_.weights.alu);
        const bool is_min = b == Builtin::kMin || b == Builtin::kFminf;
        const bool force_float =
            b == Builtin::kFminf || b == Builtin::kFmaxf;
        Lanes out(static_cast<std::size_t>(nlanes_));
        for (int l = 0; l < nlanes_; ++l) {
          if (!mask[static_cast<std::size_t>(l)]) continue;
          Value x = av[static_cast<std::size_t>(l)];
          Value y = bv[static_cast<std::size_t>(l)];
          if (b == Builtin::kPowf) {
            out[static_cast<std::size_t>(l)] =
                Value::of_float(std::pow(x.as_f(), y.as_f())).to_f32();
          } else if (is_min) {
            if (x.is_float() || y.is_float() || force_float)
              out[static_cast<std::size_t>(l)] =
                  Value::of_float(std::min(x.as_f(), y.as_f())).to_f32();
            else
              out[static_cast<std::size_t>(l)] =
                  Value::of_int(std::min(x.i, y.i));
          } else {
            if (x.is_float() || y.is_float() || force_float)
              out[static_cast<std::size_t>(l)] =
                  Value::of_float(std::max(x.as_f(), y.as_f())).to_f32();
            else
              out[static_cast<std::size_t>(l)] =
                  Value::of_int(std::max(x.i, y.i));
          }
        }
        return out;
      }
      case Builtin::kNotBuiltin:
        break;
    }
    throw SimError("unknown function '" + f + "' at " + c.loc().str());
  }

  /// __shfl family. Per paper Sec. 2.1: a warp is partitioned into groups
  /// of `width`; reads source lanes' register values.
  Lanes eval_shfl(const CallExpr& c, Builtin b, const Mask& mask) {
    if (spec_.sm_version < 30)
      throw SimError("__shfl requires sm_30+ (device is sm_" +
                     std::to_string(spec_.sm_version) + ")");
    if (c.args.size() != 3)
      throw SimError(c.callee + " expects (var, lane, width) at " +
                     c.loc().str());
    // Source values must exist for all lanes in active warps, so evaluate
    // the variable under a warp-broadened mask.
    Mask broad(static_cast<std::size_t>(nlanes_), 0);
    for_each_active_warp(mask, [&](int, int lo, int hi) {
      for (int l = lo; l < hi; ++l) broad[static_cast<std::size_t>(l)] = 1;
    });
    // Suppress uninit-read reports while evaluating under the broadened
    // mask: only the lanes actually *selected* as shfl sources matter, and
    // those are checked below once the source lanes are known.
    ++shfl_arg_depth_;
    Lanes var = eval(*c.args[0], broad);
    --shfl_arg_depth_;
    Lanes sel = eval(*c.args[1], mask);
    Lanes width = eval(*c.args[2], mask);
    ++shfl_ops_;
    charge_issue(mask, opt_.weights.shfl);
    for_each_active_warp(mask, [&](int w, int, int) {
      charge_latency(w, spec_.shfl_latency_cycles);
    });
    std::vector<int> src_of;
    if (san_) src_of.assign(static_cast<std::size_t>(nlanes_), -1);
    Lanes out(static_cast<std::size_t>(nlanes_));
    for (int l = 0; l < nlanes_; ++l) {
      if (!mask[static_cast<std::size_t>(l)]) continue;
      int lane = l % spec_.warp_size;
      int warp_base = l - lane;
      std::int64_t wdt = width[static_cast<std::size_t>(l)].as_i();
      if (wdt <= 0 || wdt > spec_.warp_size || (wdt & (wdt - 1)) != 0)
        throw SimError("__shfl width must be a power of two in [1,32]");
      int group_base = lane / static_cast<int>(wdt) * static_cast<int>(wdt);
      std::int64_t s = sel[static_cast<std::size_t>(l)].as_i();
      int src_lane;
      if (b == Builtin::kShfl) {
        src_lane = group_base + static_cast<int>(s % wdt);
      } else if (b == Builtin::kShflUp) {
        int cand = lane - static_cast<int>(s);
        src_lane = cand < group_base ? lane : cand;
      } else if (b == Builtin::kShflDown) {
        int cand = lane + static_cast<int>(s);
        src_lane = cand >= group_base + static_cast<int>(wdt) ? lane : cand;
      } else {  // __shfl_xor
        int cand = group_base + ((lane - group_base) ^ static_cast<int>(s));
        src_lane = cand < group_base + static_cast<int>(wdt) ? cand : lane;
      }
      int src_tid = warp_base + src_lane;
      // A negative selector (e.g. __shfl(v, -1, 32)) or a delta that
      // escapes the warp produces an out-of-range source lane: undefined
      // on hardware. Recover with the caller's own value, as the hardware
      // effectively does for out-of-range segments.
      if (src_lane < 0 || src_lane >= spec_.warp_size) {
        if (san_)
          san_report(HazardKind::kShflHazard, c.loc(), l,
                     c.callee + " source lane " + std::to_string(src_lane) +
                         " is outside [0," +
                         std::to_string(spec_.warp_size) + ")");
        src_tid = l;
      } else if (src_tid >= nlanes_) {
        if (san_)
          san_report(HazardKind::kShflHazard, c.loc(), l,
                     c.callee + " source lane " + std::to_string(src_lane) +
                         " lies beyond the thread block");
        src_tid = l;
      } else if (san_ && !mask[static_cast<std::size_t>(src_tid)]) {
        san_report(HazardKind::kShflHazard, c.loc(), l,
                   c.callee + " reads from inactive source lane " +
                       std::to_string(src_lane) +
                       " (undefined on real hardware)");
      }
      if (san_) src_of[static_cast<std::size_t>(l)] = src_tid;
      out[static_cast<std::size_t>(l)] =
          var[static_cast<std::size_t>(src_tid)];
    }
    if (san_ && c.args[0]->kind() == ExprKind::kVarRef) {
      // Post-hoc init check on the lanes actually read as sources. The
      // bound slot id replaces the old vars_.find string lookup.
      const auto& vr = static_cast<const VarRef&>(*c.args[0]);
      const Slot* vs =
          vr.sim_slot >= 0 &&
                  frame_[static_cast<std::size_t>(vr.sim_slot)].live
              ? &frame_[static_cast<std::size_t>(vr.sim_slot)]
              : nullptr;
      if (vs && vs->type.is_scalar() && !vs->is_uniform_param &&
          !vs->shadow.empty()) {
        for (int l = 0; l < nlanes_; ++l) {
          int s = src_of[static_cast<std::size_t>(l)];
          if (s >= 0 && !vs->shadow[static_cast<std::size_t>(s)]) {
            san_report(HazardKind::kUninitRead, c.loc(), l,
                       c.callee + " reads uninitialized variable '" +
                           vr.name + "' from lane " +
                           std::to_string(s % spec_.warp_size));
            break;
          }
        }
      }
    }
    return out;
  }

  // ---------------- statement execution ----------------
  void exec_block(const Block& b, Mask mask) {
    for (const auto& s : b.stmts) {
      // Returned lanes stay dead for the rest of the kernel.
      bool any_active = false;
      for (int l = 0; l < nlanes_; ++l) {
        if (returned_[static_cast<std::size_t>(l)])
          mask[static_cast<std::size_t>(l)] = 0;
        any_active |= mask[static_cast<std::size_t>(l)] != 0;
      }
      if (!any_active) return;
      exec(*s, mask);
    }
  }

  void exec(const Stmt& s, const Mask& mask) {
    count_step(s.loc());
    switch (s.kind()) {
      case StmtKind::kBlock:
        exec_block(static_cast<const Block&>(s), mask);
        return;
      case StmtKind::kDecl: {
        begin_leaf_stmt();
        const auto& d = static_cast<const DeclStmt&>(s);
        Slot& slot = declare(d);
        if (!d.init_list.empty()) {
          // Brace initializer: constant contents, identical for every
          // thread; evaluated once with lane-0 semantics.
          if (static_cast<std::int64_t>(d.init_list.size()) >
              d.type.element_count())
            throw SimError("too many initializers for '" + d.name + "'");
          Mask one(static_cast<std::size_t>(nlanes_), 0);
          one[0] = 1;
          for (std::size_t e = 0; e < d.init_list.size(); ++e) {
            Lanes v = eval(*d.init_list[e], one);
            Value val = coerce(v[0], d.type.scalar);
            if (d.type.space == AddrSpace::kShared) {
              slot.data[e] = val;
            } else {
              std::int64_t elems = d.type.element_count();
              for (int l = 0; l < nlanes_; ++l)
                slot.data[static_cast<std::size_t>(l) *
                              static_cast<std::size_t>(elems) +
                          e] = val;
            }
          }
          if (san_) {
            // Brace initializers zero-fill the tail in C, so the whole
            // array is initialized, not just the listed elements.
            if (d.type.space == AddrSpace::kShared) {
              for (std::int64_t e = 0; e < d.type.element_count(); ++e)
                smem_shadow_[slot.base_word + static_cast<std::uint64_t>(e)]
                    .init = true;
            } else {
              std::fill(slot.shadow.begin(), slot.shadow.end(), 1);
            }
          }
          end_leaf_stmt();
          return;
        }
        if (d.init) {
          if (d.type.is_array())
            throw SimError("array initializers are not supported at " +
                           d.loc().str());
          Lanes v = eval(*d.init, mask);
          charge_issue(mask, opt_.weights.alu);
          for (int l = 0; l < nlanes_; ++l)
            if (mask[static_cast<std::size_t>(l)]) {
              slot.data[static_cast<std::size_t>(l)] =
                  coerce(v[static_cast<std::size_t>(l)], d.type.scalar);
              if (!slot.shadow.empty())
                slot.shadow[static_cast<std::size_t>(l)] = 1;
            }
        }
        end_leaf_stmt();
        return;
      }
      case StmtKind::kAssign: {
        begin_leaf_stmt();
        exec_assign(static_cast<const AssignStmt&>(s), mask);
        end_leaf_stmt();
        return;
      }
      case StmtKind::kIf: {
        const auto& i = static_cast<const IfStmt&>(s);
        begin_leaf_stmt();
        Lanes c = eval(*i.cond, mask);
        charge_issue(mask, opt_.weights.alu);  // branch
        end_leaf_stmt();
        Mask then_mask(static_cast<std::size_t>(nlanes_), 0);
        Mask else_mask(static_cast<std::size_t>(nlanes_), 0);
        for (int l = 0; l < nlanes_; ++l) {
          if (!mask[static_cast<std::size_t>(l)]) continue;
          if (c[static_cast<std::size_t>(l)].truthy())
            then_mask[static_cast<std::size_t>(l)] = 1;
          else
            else_mask[static_cast<std::size_t>(l)] = 1;
        }
        // Count warps where both paths have lanes (divergence).
        for_each_active_warp(mask, [&](int, int lo, int hi) {
          bool t = false, e = false;
          for (int l = lo; l < hi; ++l) {
            t |= then_mask[static_cast<std::size_t>(l)] != 0;
            e |= else_mask[static_cast<std::size_t>(l)] != 0;
          }
          if (t && e) ++divergent_branches_;
        });
        if (any(then_mask)) exec_block(*i.then_body, then_mask);
        if (i.else_body && any(else_mask)) exec_block(*i.else_body, else_mask);
        return;
      }
      case StmtKind::kFor: {
        const auto& f = static_cast<const ForStmt&>(s);
        if (f.init) exec(*f.init, mask);
        Mask active = mask;
        std::int64_t iters = 0;
        LoopScope loop(loop_stack_, f.loc());
        while (true) {
          // Back-edges are budgeted so even empty or condition-only spins
          // (e.g. a dropped increment) trip the watchdog.
          count_step(f.loc());
          ++loop_stack_.back().second;
          if (f.cond) {
            begin_leaf_stmt();
            Lanes c = eval(*f.cond, active);
            charge_issue(active, opt_.weights.alu);
            end_leaf_stmt();
            for (int l = 0; l < nlanes_; ++l)
              if (active[static_cast<std::size_t>(l)] &&
                  !c[static_cast<std::size_t>(l)].truthy())
                active[static_cast<std::size_t>(l)] = 0;
          }
          if (!any(active)) break;
          if (++iters > opt_.max_loop_iterations)
            throw SimError("loop exceeded max iterations at " +
                           f.loc().str());
          exec_block(*f.body, active);
          // Lanes that returned inside the body stop iterating.
          for (int l = 0; l < nlanes_; ++l)
            if (returned_[static_cast<std::size_t>(l)])
              active[static_cast<std::size_t>(l)] = 0;
          if (!any(active)) break;
          if (f.inc) exec(*f.inc, active);
        }
        return;
      }
      case StmtKind::kWhile: {
        const auto& wl = static_cast<const WhileStmt&>(s);
        Mask active = mask;
        std::int64_t iters = 0;
        LoopScope loop(loop_stack_, wl.loc());
        while (true) {
          count_step(wl.loc());
          ++loop_stack_.back().second;
          begin_leaf_stmt();
          Lanes c = eval(*wl.cond, active);
          charge_issue(active, opt_.weights.alu);
          end_leaf_stmt();
          for (int l = 0; l < nlanes_; ++l)
            if (active[static_cast<std::size_t>(l)] &&
                !c[static_cast<std::size_t>(l)].truthy())
              active[static_cast<std::size_t>(l)] = 0;
          if (!any(active)) break;
          if (++iters > opt_.max_loop_iterations)
            throw SimError("while loop exceeded max iterations at " +
                           wl.loc().str());
          exec_block(*wl.body, active);
          for (int l = 0; l < nlanes_; ++l)
            if (returned_[static_cast<std::size_t>(l)])
              active[static_cast<std::size_t>(l)] = 0;
        }
        return;
      }
      case StmtKind::kExpr: {
        begin_leaf_stmt();
        (void)eval(*static_cast<const ExprStmt&>(s).expr, mask);
        end_leaf_stmt();
        return;
      }
      case StmtKind::kReturn:
        for (int l = 0; l < nlanes_; ++l)
          if (mask[static_cast<std::size_t>(l)])
            returned_[static_cast<std::size_t>(l)] = 1;
        return;
      case StmtKind::kBreak:
      case StmtKind::kContinue:
        throw SimError(
            "break/continue are not supported by the simulator; use a "
            "guarding if (paper Sec. 3.7 padding uses `if (i < n)`)");
    }
  }

  void exec_assign(const AssignStmt& a, const Mask& mask) {
    Lanes rhs = eval(*a.rhs, mask);
    // Compound assignment reads the target first.
    if (a.op != AssignOp::kAssign) {
      Lanes old = eval(*a.lhs, mask);
      charge_issue(mask, opt_.weights.alu);
      BinOp op = a.op == AssignOp::kAdd   ? BinOp::kAdd
                 : a.op == AssignOp::kSub ? BinOp::kSub
                 : a.op == AssignOp::kMul ? BinOp::kMul
                                          : BinOp::kDiv;
      for (int l = 0; l < nlanes_; ++l)
        if (mask[static_cast<std::size_t>(l)])
          rhs[static_cast<std::size_t>(l)] =
              apply_binop(op, old[static_cast<std::size_t>(l)],
                          rhs[static_cast<std::size_t>(l)], a.loc());
    }
    if (a.lhs->kind() == ExprKind::kVarRef) {
      const auto& v = static_cast<const VarRef&>(*a.lhs);
      Slot& slot = slot_at(v.sim_slot, v.name, v.loc());
      if (slot.is_buffer_param || slot.type.is_array())
        throw SimError("cannot assign to '" + v.name + "' without an index");
      if (slot.is_uniform_param)
        throw SimError("cannot assign to kernel parameter '" + v.name +
                       "' (treated as uniform)");
      charge_issue(mask, opt_.weights.alu);
      for (int l = 0; l < nlanes_; ++l)
        if (mask[static_cast<std::size_t>(l)]) {
          slot.data[static_cast<std::size_t>(l)] =
              coerce(rhs[static_cast<std::size_t>(l)], slot.type.scalar);
          if (!slot.shadow.empty())
            slot.shadow[static_cast<std::size_t>(l)] = 1;
        }
      return;
    }
    if (a.lhs->kind() == ExprKind::kArrayIndex) {
      (void)eval_index(static_cast<const ArrayIndex&>(*a.lhs), mask, &rhs);
      return;
    }
    throw SimError("invalid assignment target at " + a.loc().str());
  }

  static constexpr std::uint64_t kLocalSpaceBase = 1ULL << 40;

  const DeviceSpec& spec_;
  DeviceMemory& mem_;
  const Interpreter::Options& opt_;
  const BoundKernel& bound_;
  const Kernel& kernel_;
  const LaunchConfig& cfg_;
  Dim3 block_idx_;
  std::int64_t flat_block_ = 0;
  std::int64_t max_steps_ = std::numeric_limits<std::int64_t>::max();
  std::int64_t steps_ = 0;
  std::vector<std::pair<SourceLoc, std::int64_t>> loop_stack_;
  int nlanes_;
  int nwarps_;
  L1Cache l1_;

  /// Flat variable frame, indexed by the binder's slot ids.
  std::vector<Slot> frame_;
  /// Precomputed geometry lane vectors (threadIdx.x, ..., gridDim.z).
  Lanes geom_[kGeomCount];
  Mask returned_;
  BlockSanitizer* san_ = nullptr;
  std::unordered_map<std::uint64_t, SharedShadow> smem_shadow_;
  std::vector<std::uint64_t> warp_gen_;  // barrier arrivals per warp
  std::uint64_t access_seq_ = 0;         // one id per shared vector access
  int shfl_arg_depth_ = 0;  // suppress uninit checks under shfl's broad mask
  std::vector<double> warp_issue_;
  std::vector<double> warp_latency_;
  std::vector<double> warp_pending_;
  std::uint64_t smem_word_cursor_ = 0;
  std::uint64_t local_word_cursor_ = 0;

  std::int64_t global_transactions_ = 0;
  std::int64_t local_transactions_ = 0;
  std::int64_t local_l1_misses_ = 0;
  std::int64_t dram_transactions_ = 0;
  std::int64_t smem_accesses_ = 0;
  std::int64_t smem_replays_ = 0;
  std::int64_t shfl_ops_ = 0;
  std::int64_t sync_ops_ = 0;
  std::int64_t divergent_branches_ = 0;
};

}  // namespace

namespace {

/// Everything one block produced, staged for the deterministic merge.
struct BlockOutcome {
  KernelStats stats;
  bool done = false;          // executed (possibly faulting); false when
                              // cooperative cancellation skipped the block
  bool ok = false;
  bool faulted = false;       // sanitized SimError, contained to the block
  bool tripped = false;       // sanitized watchdog trip; cancels the launch
  std::string fault_message;
  SourceLoc trip_loc;
  std::vector<HazardReport> reports;  // hazard stream, in execution order
  std::exception_ptr error;   // unsanitized failure, rethrown by the merge
};

}  // namespace

std::int64_t Interpreter::resolve_max_steps(std::int64_t requested) {
  if (requested > 0) return requested;
  if (requested < 0) return std::numeric_limits<std::int64_t>::max();
  if (const char* env = std::getenv("CUDANP_MAX_STEPS")) {
    // Checked parse: partial ("10x") or out-of-range values are ignored
    // (fall through to the default) instead of strtoll's prefix parse.
    if (auto v = parse_i64(env, 1, std::numeric_limits<std::int64_t>::max()))
      return *v;
  }
  return kDefaultMaxStepsPerBlock;
}

std::int64_t Interpreter::resolve_max_steps(std::int64_t requested,
                                            std::int64_t deadline_budget) {
  std::int64_t steps = resolve_max_steps(requested);
  if (deadline_budget > 0) steps = std::min(steps, deadline_budget);
  return steps;
}

void validate_launch(const DeviceSpec& spec, const LaunchConfig& cfg,
                     std::int64_t shared_mem_per_block) {
  auto bad_dim = [](const char* what, const Dim3& d) {
    return std::string("invalid launch: ") + what + " dimensions (" +
           std::to_string(d.x) + "," + std::to_string(d.y) + "," +
           std::to_string(d.z) + ") must all be positive";
  };
  if (cfg.grid.x <= 0 || cfg.grid.y <= 0 || cfg.grid.z <= 0)
    throw SimError(bad_dim("grid", cfg.grid));
  if (cfg.block.x <= 0 || cfg.block.y <= 0 || cfg.block.z <= 0)
    throw SimError(bad_dim("block", cfg.block));
  if (cfg.block.count() > spec.max_threads_per_block)
    throw SimError("invalid launch: block size " +
                   std::to_string(cfg.block.count()) +
                   " exceeds the device limit of " +
                   std::to_string(spec.max_threads_per_block) + " threads");
  if (shared_mem_per_block > spec.shared_mem_per_smx)
    throw SimError("invalid launch: " +
                   std::to_string(shared_mem_per_block) +
                   " bytes of shared memory per block exceed the SMX "
                   "capacity of " +
                   std::to_string(spec.shared_mem_per_smx) + " bytes");
}

KernelStats Interpreter::run(const Kernel& kernel, const LaunchConfig& cfg,
                             int resident_blocks_per_smx) {
  validate_launch(spec_, cfg);

  const auto bound = bind_kernel(kernel);
  const std::int64_t nblocks = cfg.grid.count();
  const int jobs = ExecPool::resolve_jobs(opt_.jobs);
  const std::int64_t max_steps = resolve_max_steps(opt_.max_steps_per_block);
  // One tripped (or erroring) block cooperatively cancels the blocks that
  // have not started yet; the ordered merge below re-runs any cancelled
  // block that precedes the first trip, so the outcome is bit-identical
  // to serial execution at every job count.
  std::atomic<bool> cancel{false};

  // Blocks are independent (they communicate only through __syncthreads
  // within themselves), so the grid runs on `jobs` host threads. Each
  // block writes its outcome to its own slot; nothing below touches the
  // shared SanitizerEngine until the ordered merge.
  std::vector<BlockOutcome> outcomes(static_cast<std::size_t>(nblocks));
  auto run_block = [&](std::int64_t i) {
    BlockOutcome& out = outcomes[static_cast<std::size_t>(i)];
    const Dim3 bidx{static_cast<int>(i % cfg.grid.x),
                    static_cast<int>((i / cfg.grid.x) % cfg.grid.y),
                    static_cast<int>(i / (cfg.grid.x * cfg.grid.y))};
    BlockSanitizer bs{opt_.sanitizer, {}};
    BlockSanitizer* bsp = opt_.sanitizer ? &bs : nullptr;
    try {
      BlockExec block(spec_, mem_, opt_, *bound, cfg, bidx,
                      resident_blocks_per_smx, bsp, i, max_steps);
      out.stats = block.run();
      out.ok = true;
    } catch (const WatchdogError& e) {
      if (opt_.sanitizer) {
        // A trip is not containable like a kSimFault: the same runaway
        // loop would burn the full budget in every remaining block, so
        // the launch is cancelled instead of kept going.
        out.tripped = true;
        out.fault_message = e.what();
        out.trip_loc = e.loc();
      } else {
        out.error = std::current_exception();
      }
      cancel.store(true, std::memory_order_relaxed);
    } catch (const SimError& e) {
      if (opt_.sanitizer) {
        // Keep-going mode: contain the fault to this block; the merge
        // records it after the block's earlier hazards, like the serial
        // engine did.
        out.faulted = true;
        out.fault_message = e.what();
      } else {
        out.error = std::current_exception();
        cancel.store(true, std::memory_order_relaxed);
      }
    } catch (...) {
      out.error = std::current_exception();
      cancel.store(true, std::memory_order_relaxed);
    }
    out.reports = std::move(bs.reports);
    out.done = true;
  };

  if (jobs <= 1 || nblocks <= 1) {
    for (std::int64_t i = 0; i < nblocks; ++i) {
      run_block(i);
      // Serial unsanitized runs abort at the first failing block, exactly
      // like the original grid loop; a sanitized trip likewise cancels
      // the remaining blocks (the merge discards everything after it).
      if (outcomes[static_cast<std::size_t>(i)].error)
        std::rethrow_exception(outcomes[static_cast<std::size_t>(i)].error);
      if (outcomes[static_cast<std::size_t>(i)].tripped) break;
    }
  } else {
    ExecPool::instance().parallel_for(nblocks, jobs, run_block, &cancel);
  }

  // Deterministic merge, in block-index order (== the old serial order):
  // replay each block's hazard stream through the shared engine so
  // dedupe, total counts and the error limit behave identically at every
  // job count, then fold stats of blocks that count.
  KernelStats total;
  bool stop = false;
  for (std::int64_t i = 0; i < nblocks && !stop; ++i) {
    BlockOutcome& out = outcomes[static_cast<std::size_t>(i)];
    // A block cancelled before it started may precede the first trip in
    // index order (a higher-index block can trip first under parallel
    // scheduling); run it inline now so the merge sees exactly the serial
    // prefix. Blocks at or past the first processed trip are never
    // reached — the merge stops there.
    if (!out.done) run_block(i);
    for (auto& r : out.reports) {
      try {
        opt_.sanitizer->report(std::move(r));
      } catch (const HazardLimitReached&) {
        stop = true;  // engine kept the triggering report
        break;
      }
    }
    if (stop) break;  // this block's stats are discarded, like serial
    if (out.error) std::rethrow_exception(out.error);
    if (out.ok) {
      total.add_block(out.stats);
    } else if (out.tripped) {
      HazardReport r;
      r.kind = HazardKind::kWatchdogTrip;
      r.kernel = kernel.name;
      r.block = Dim3{static_cast<int>(i % cfg.grid.x),
                     static_cast<int>((i / cfg.grid.x) % cfg.grid.y),
                     static_cast<int>(i / (cfg.grid.x * cfg.grid.y))};
      r.loc = out.trip_loc;
      r.message = out.fault_message;
      try {
        opt_.sanitizer->report(std::move(r));
      } catch (const HazardLimitReached&) {
      }
      // The launch is cancelled at the first (lowest-index) trip; later
      // blocks' outcomes are discarded, exactly like serial execution.
      stop = true;
    } else if (out.faulted) {
      HazardReport r;
      r.kind = HazardKind::kSimFault;
      r.kernel = kernel.name;
      r.block = Dim3{static_cast<int>(i % cfg.grid.x),
                     static_cast<int>((i / cfg.grid.x) % cfg.grid.y),
                     static_cast<int>(i / (cfg.grid.x * cfg.grid.y))};
      r.message = out.fault_message;
      try {
        opt_.sanitizer->report(std::move(r));
      } catch (const HazardLimitReached&) {
        stop = true;
      }
    }
  }
  // crit_path_cycles was summed per block; convert to the average block's
  // slowest-warp path.
  if (total.blocks > 0)
    total.crit_path_cycles /= static_cast<double>(total.blocks);
  return total;
}

RunResult run_and_time(const DeviceSpec& spec, DeviceMemory& mem,
                       const ir::Kernel& kernel, const LaunchConfig& cfg,
                       const ResourceUsage& resources,
                       Interpreter::Options opt) {
  RunResult r;
  validate_launch(spec, cfg, resources.shared_mem_per_block);
  r.occupancy = compute_occupancy(
      spec, static_cast<int>(cfg.block.count()), resources);
  if (r.occupancy.blocks_per_smx == 0)
    throw SimError("kernel '" + kernel.name +
                   "' cannot launch: occupancy zero (" +
                   r.occupancy.limiting_factor + ")");
  Interpreter interp(spec, mem, opt);
  r.stats = interp.run(kernel, cfg, r.occupancy.blocks_per_smx);
  TimingModel model(spec, opt.weights);
  r.timing = model.estimate(r.stats, r.occupancy);
  return r;
}

}  // namespace cudanp::sim
