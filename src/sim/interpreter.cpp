#include "sim/interpreter.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <limits>
#include <memory>
#include <sstream>
#include <utility>

#include "sim/binder.hpp"
#include "sim/bytecode.hpp"
#include "sim/exec_core.hpp"
#include "sim/exec_pool.hpp"
#include "sim/fault.hpp"
#include "sim/sanitizer.hpp"
#include "sim/vm.hpp"
#include "support/string_utils.hpp"

namespace cudanp::sim {

using namespace cudanp::ir;

namespace {

using exec::any;
using exec::BlockSanitizer;
using exec::LaneView;
using exec::Lanes;
using exec::Mask;
using exec::Slot;

/// The reference engine: a recursive walk over the slot-bound AST. All
/// semantics live in exec::BlockCore, shared with the bytecode VM; this
/// class only owns the tree traversal and the Lanes materialization the
/// recursive evaluation style needs.
class BlockExec : public exec::BlockCore {
 public:
  using BlockCore::BlockCore;

  KernelStats run() {
    if (opt_.fault && opt_.fault->should_stall(flat_block_)) stall();
    Mask mask(static_cast<std::size_t>(nlanes_), 1);
    exec_block(*kernel_.body, mask);
    return collect_stats();
  }

 private:
  /// Tracks the enclosing loops' back-edge counts for watchdog reports.
  struct LoopScope {
    std::vector<std::pair<SourceLoc, std::int64_t>>& stack;
    explicit LoopScope(
        std::vector<std::pair<SourceLoc, std::int64_t>>& s, SourceLoc loc)
        : stack(s) {
      stack.emplace_back(loc, 0);
    }
    ~LoopScope() { stack.pop_back(); }
  };

  [[nodiscard]] static LaneView view(const Lanes& v) {
    return LaneView{v.data(), Value{}};
  }

  // ---------------- expression evaluation ----------------
  Lanes eval(const Expr& e, const Mask& mask) {
    switch (e.kind()) {
      case ExprKind::kIntLit:
        return Lanes(static_cast<std::size_t>(nlanes_),
                     Value::of_int(static_cast<const IntLit&>(e).value));
      case ExprKind::kFloatLit:
        return Lanes(
            static_cast<std::size_t>(nlanes_),
            Value::of_float(static_cast<const FloatLit&>(e).value).to_f32());
      case ExprKind::kVarRef:
        return eval_varref(static_cast<const VarRef&>(e), mask);
      case ExprKind::kArrayIndex:
        return eval_index(static_cast<const ArrayIndex&>(e), mask,
                          /*store=*/nullptr);
      case ExprKind::kBinary: {
        const auto& b = static_cast<const BinaryExpr&>(e);
        Lanes lhs = eval(*b.lhs, mask);
        Lanes rhs = eval(*b.rhs, mask);
        Lanes out(static_cast<std::size_t>(nlanes_));
        do_binop(b.op, view(lhs), view(rhs), mask, out.data(), b.loc());
        return out;
      }
      case ExprKind::kUnary: {
        const auto& u = static_cast<const UnaryExpr&>(e);
        Lanes v = eval(*u.operand, mask);
        do_unop(u.op, view(v), mask, v.data());
        return v;
      }
      case ExprKind::kCall:
        return eval_call(static_cast<const CallExpr&>(e), mask);
      case ExprKind::kTernary: {
        const auto& t = static_cast<const TernaryExpr&>(e);
        Lanes c = eval(*t.cond, mask);
        Lanes a = eval(*t.then_value, mask);
        Lanes b = eval(*t.else_value, mask);
        do_select(view(c), view(a), view(b), mask, a.data());
        return a;
      }
      case ExprKind::kCast: {
        const auto& c = static_cast<const CastExpr&>(e);
        Lanes v = eval(*c.operand, mask);
        do_cast(c.to, view(v), mask, v.data());
        return v;
      }
    }
    throw SimError("unreachable expression kind");
  }

  Lanes eval_varref(const VarRef& v, const Mask& mask) {
    if (slot_is_geometry(v.sim_slot))
      return geom_[slot_geometry_code(v.sim_slot)];
    Slot& slot = var_read_check(v.sim_slot, v.name, mask, v.loc());
    if (slot.is_uniform_param)
      return Lanes(static_cast<std::size_t>(nlanes_), slot.data[0]);
    return slot.data;  // register scalar: copy per-lane values
  }

  /// Flattens a (possibly multi-dim) index list; bounds-checks each dim.
  Lanes flatten_index(const ArrayIndex& ai, const Slot& slot,
                      const Mask& mask) {
    const auto& dims = slot.type.array_dims;
    if (ai.indices.size() != dims.size())
      throw SimError("array '" +
                     static_cast<const VarRef&>(*ai.base).name + "' has " +
                     std::to_string(dims.size()) + " dims, indexed with " +
                     std::to_string(ai.indices.size()) + " at " +
                     ai.loc().str());
    Lanes flat(static_cast<std::size_t>(nlanes_), Value::of_int(0));
    for (std::size_t d = 0; d < dims.size(); ++d) {
      Lanes idx = eval(*ai.indices[d], mask);
      if (d > 0) charge_issue(mask, opt_.timing.weights.alu);  // index math
      flatten_dim(flat.data(), view(idx), dims[d], /*first=*/d == 0, mask,
                  ai.loc());
    }
    return flat;
  }

  /// Load (store == nullptr) or store (store != nullptr provides values).
  Lanes eval_index(const ArrayIndex& ai, const Mask& mask,
                   const Lanes* store) {
    if (ai.base->kind() != ExprKind::kVarRef)
      throw SimError("array base must be a variable at " + ai.loc().str());
    const auto& base = static_cast<const VarRef&>(*ai.base);
    const std::string& name = base.name;
    Slot& slot = slot_at(base.sim_slot, name, ai.loc());

    if (slot.is_buffer_param) {
      if (ai.indices.size() != 1)
        throw SimError("pointer '" + name + "' requires exactly one index");
      Lanes idx = eval(*ai.indices[0], mask);
      Lanes out(static_cast<std::size_t>(nlanes_));
      LaneView sv;
      if (store) sv = view(*store);
      buffer_access(slot, name, view(idx), mask, store ? &sv : nullptr,
                    out.data(), ai.loc());
      return out;
    }

    if (!slot.type.is_array())
      throw SimError("'" + name + "' is not an array at " + ai.loc().str());

    Lanes flat = flatten_index(ai, slot, mask);
    LaneView sv;
    if (store) sv = view(*store);
    switch (slot.type.space) {
      case AddrSpace::kShared: {
        Lanes out(static_cast<std::size_t>(nlanes_));
        shared_access(slot, name, flat.data(), mask, store ? &sv : nullptr,
                      out.data(), ai.loc());
        return out;
      }
      case AddrSpace::kLocal:
      case AddrSpace::kRegister:
      case AddrSpace::kConstant: {
        Lanes out(static_cast<std::size_t>(nlanes_));
        local_access(slot, name, flat.data(), mask, store ? &sv : nullptr,
                     out.data(), ai.loc());
        return out;
      }
      case AddrSpace::kGlobal:
        break;
    }
    throw SimError("unsupported address space for array '" + name + "'");
  }

  Lanes eval_call(const CallExpr& c, const Mask& mask) {
    const std::string& f = c.callee;
    // Dispatch on the binder's integer annotation; the string resolution
    // only runs for nodes created after binding (mutated AST).
    Builtin b = c.sim_builtin == kBuiltinUnset
                    ? resolve_builtin(f)
                    : static_cast<Builtin>(c.sim_builtin);

    // Unary math builtins.
    auto unary_math = [&](double (*fn)(double), bool sfu) -> Lanes {
      if (c.args.size() != 1)
        throw SimError(f + " expects 1 argument at " + c.loc().str());
      Lanes v = eval(*c.args[0], mask);
      do_unary_math(fn, sfu, view(v), mask, v.data());
      return v;
    };

    switch (b) {
      case Builtin::kSyncthreads: {
        do_sync(mask, c.loc());
        return Lanes(static_cast<std::size_t>(nlanes_), Value::of_int(0));
      }
      case Builtin::kShfl:
      case Builtin::kShflUp:
      case Builtin::kShflDown:
      case Builtin::kShflXor:
        return eval_shfl(c, b, mask);
      case Builtin::kSqrt:
        return unary_math([](double x) { return std::sqrt(x); }, true);
      case Builtin::kFabs:
        return unary_math([](double x) { return std::fabs(x); }, false);
      case Builtin::kExp:
        return unary_math([](double x) { return std::exp(x); }, true);
      case Builtin::kLog:
        return unary_math([](double x) { return std::log(x); }, true);
      case Builtin::kSin:
        return unary_math([](double x) { return std::sin(x); }, true);
      case Builtin::kCos:
        return unary_math([](double x) { return std::cos(x); }, true);
      case Builtin::kFloor:
        return unary_math([](double x) { return std::floor(x); }, false);
      case Builtin::kRsqrt:
        return unary_math([](double x) { return 1.0 / std::sqrt(x); }, true);
      case Builtin::kAbs: {
        if (c.args.size() != 1)
          throw SimError("abs expects 1 argument at " + c.loc().str());
        Lanes v = eval(*c.args[0], mask);
        do_abs(view(v), mask, v.data());
        return v;
      }
      case Builtin::kMin:
      case Builtin::kMax:
      case Builtin::kFminf:
      case Builtin::kFmaxf:
      case Builtin::kPowf: {
        if (c.args.size() != 2)
          throw SimError(f + " expects 2 arguments at " + c.loc().str());
        Lanes av = eval(*c.args[0], mask);
        Lanes bv = eval(*c.args[1], mask);
        Lanes out(static_cast<std::size_t>(nlanes_));
        do_binmath(b, view(av), view(bv), mask, out.data());
        return out;
      }
      case Builtin::kNotBuiltin:
        break;
    }
    throw SimError("unknown function '" + f + "' at " + c.loc().str());
  }

  /// __shfl family. Per paper Sec. 2.1: a warp is partitioned into groups
  /// of `width`; reads source lanes' register values.
  Lanes eval_shfl(const CallExpr& c, Builtin b, const Mask& mask) {
    if (spec_.sm_version < 30)
      throw SimError("__shfl requires sm_30+ (device is sm_" +
                     std::to_string(spec_.sm_version) + ")");
    if (c.args.size() != 3)
      throw SimError(c.callee + " expects (var, lane, width) at " +
                     c.loc().str());
    // Source values must exist for all lanes in active warps, so evaluate
    // the variable under a warp-broadened mask.
    Mask broad;
    make_broad_mask(mask, broad);
    // Suppress uninit-read reports while evaluating under the broadened
    // mask: only the lanes actually *selected* as shfl sources matter, and
    // those are checked below once the source lanes are known.
    ++shfl_arg_depth_;
    Lanes var = eval(*c.args[0], broad);
    --shfl_arg_depth_;
    Lanes sel = eval(*c.args[1], mask);
    Lanes width = eval(*c.args[2], mask);
    std::int32_t var_slot = kSlotUnbound;
    const std::string* var_name = nullptr;
    if (c.args[0]->kind() == ExprKind::kVarRef) {
      const auto& vr = static_cast<const VarRef&>(*c.args[0]);
      var_slot = vr.sim_slot;
      var_name = &vr.name;
    }
    Lanes out(static_cast<std::size_t>(nlanes_));
    do_shfl(b, c.callee, view(var), view(sel), view(width), mask, out.data(),
            c.loc(), var_slot, var_name);
    return out;
  }

  // ---------------- statement execution ----------------
  void exec_block(const Block& b, Mask mask) {
    for (const auto& s : b.stmts) {
      // Returned lanes stay dead for the rest of the kernel.
      bool any_active = false;
      for (int l = 0; l < nlanes_; ++l) {
        if (returned_[static_cast<std::size_t>(l)])
          mask[static_cast<std::size_t>(l)] = 0;
        any_active |= mask[static_cast<std::size_t>(l)] != 0;
      }
      if (!any_active) return;
      exec(*s, mask);
    }
  }

  void exec(const Stmt& s, const Mask& mask) {
    count_step(s.loc());
    switch (s.kind()) {
      case StmtKind::kBlock:
        exec_block(static_cast<const Block&>(s), mask);
        return;
      case StmtKind::kDecl: {
        begin_leaf_stmt();
        const auto& d = static_cast<const DeclStmt&>(s);
        Slot& slot = declare(d);
        if (!d.init_list.empty()) {
          // Brace initializer: constant contents, identical for every
          // thread; evaluated once with lane-0 semantics.
          if (static_cast<std::int64_t>(d.init_list.size()) >
              d.type.element_count())
            throw SimError("too many initializers for '" + d.name + "'");
          Mask one(static_cast<std::size_t>(nlanes_), 0);
          one[0] = 1;
          for (std::size_t e = 0; e < d.init_list.size(); ++e) {
            Lanes v = eval(*d.init_list[e], one);
            decl_fill(slot, d.type, e, v[0]);
          }
          decl_shadow_all(slot, d.type);
          end_leaf_stmt();
          return;
        }
        if (d.init) {
          if (d.type.is_array())
            throw SimError("array initializers are not supported at " +
                           d.loc().str());
          Lanes v = eval(*d.init, mask);
          decl_scalar_init(slot, d.type.scalar, mask, view(v));
        }
        end_leaf_stmt();
        return;
      }
      case StmtKind::kAssign: {
        begin_leaf_stmt();
        exec_assign(static_cast<const AssignStmt&>(s), mask);
        end_leaf_stmt();
        return;
      }
      case StmtKind::kIf: {
        const auto& i = static_cast<const IfStmt&>(s);
        begin_leaf_stmt();
        Lanes c = eval(*i.cond, mask);
        charge_issue(mask, opt_.timing.weights.alu);  // branch
        end_leaf_stmt();
        Mask then_mask(static_cast<std::size_t>(nlanes_), 0);
        Mask else_mask(static_cast<std::size_t>(nlanes_), 0);
        for (int l = 0; l < nlanes_; ++l) {
          if (!mask[static_cast<std::size_t>(l)]) continue;
          if (c[static_cast<std::size_t>(l)].truthy())
            then_mask[static_cast<std::size_t>(l)] = 1;
          else
            else_mask[static_cast<std::size_t>(l)] = 1;
        }
        // Count warps where both paths have lanes (divergence).
        for_each_active_warp(mask, [&](int, int lo, int hi) {
          bool t = false, e = false;
          for (int l = lo; l < hi; ++l) {
            t |= then_mask[static_cast<std::size_t>(l)] != 0;
            e |= else_mask[static_cast<std::size_t>(l)] != 0;
          }
          if (t && e) ++divergent_branches_;
        });
        if (any(then_mask)) exec_block(*i.then_body, then_mask);
        if (i.else_body && any(else_mask)) exec_block(*i.else_body, else_mask);
        return;
      }
      case StmtKind::kFor: {
        const auto& f = static_cast<const ForStmt&>(s);
        if (f.init) exec(*f.init, mask);
        Mask active = mask;
        std::int64_t iters = 0;
        LoopScope loop(loop_stack_, f.loc());
        while (true) {
          // Back-edges are budgeted so even empty or condition-only spins
          // (e.g. a dropped increment) trip the watchdog.
          count_step(f.loc());
          ++loop_stack_.back().second;
          if (f.cond) {
            begin_leaf_stmt();
            Lanes c = eval(*f.cond, active);
            charge_issue(active, opt_.timing.weights.alu);
            end_leaf_stmt();
            for (int l = 0; l < nlanes_; ++l)
              if (active[static_cast<std::size_t>(l)] &&
                  !c[static_cast<std::size_t>(l)].truthy())
                active[static_cast<std::size_t>(l)] = 0;
          }
          if (!any(active)) break;
          if (++iters > opt_.limits.max_loop_iterations)
            throw SimError("loop exceeded max iterations at " +
                           f.loc().str());
          exec_block(*f.body, active);
          // Lanes that returned inside the body stop iterating.
          for (int l = 0; l < nlanes_; ++l)
            if (returned_[static_cast<std::size_t>(l)])
              active[static_cast<std::size_t>(l)] = 0;
          if (!any(active)) break;
          if (f.inc) exec(*f.inc, active);
        }
        return;
      }
      case StmtKind::kWhile: {
        const auto& wl = static_cast<const WhileStmt&>(s);
        Mask active = mask;
        std::int64_t iters = 0;
        LoopScope loop(loop_stack_, wl.loc());
        while (true) {
          count_step(wl.loc());
          ++loop_stack_.back().second;
          begin_leaf_stmt();
          Lanes c = eval(*wl.cond, active);
          charge_issue(active, opt_.timing.weights.alu);
          end_leaf_stmt();
          for (int l = 0; l < nlanes_; ++l)
            if (active[static_cast<std::size_t>(l)] &&
                !c[static_cast<std::size_t>(l)].truthy())
              active[static_cast<std::size_t>(l)] = 0;
          if (!any(active)) break;
          if (++iters > opt_.limits.max_loop_iterations)
            throw SimError("while loop exceeded max iterations at " +
                           wl.loc().str());
          exec_block(*wl.body, active);
          for (int l = 0; l < nlanes_; ++l)
            if (returned_[static_cast<std::size_t>(l)])
              active[static_cast<std::size_t>(l)] = 0;
        }
        return;
      }
      case StmtKind::kExpr: {
        begin_leaf_stmt();
        (void)eval(*static_cast<const ExprStmt&>(s).expr, mask);
        end_leaf_stmt();
        return;
      }
      case StmtKind::kReturn:
        for (int l = 0; l < nlanes_; ++l)
          if (mask[static_cast<std::size_t>(l)])
            returned_[static_cast<std::size_t>(l)] = 1;
        return;
      case StmtKind::kBreak:
      case StmtKind::kContinue:
        throw SimError(
            "break/continue are not supported by the simulator; use a "
            "guarding if (paper Sec. 3.7 padding uses `if (i < n)`)");
    }
  }

  void exec_assign(const AssignStmt& a, const Mask& mask) {
    Lanes rhs = eval(*a.rhs, mask);
    // Compound assignment reads the target first.
    if (a.op != AssignOp::kAssign) {
      Lanes old = eval(*a.lhs, mask);
      BinOp op = a.op == AssignOp::kAdd   ? BinOp::kAdd
                 : a.op == AssignOp::kSub ? BinOp::kSub
                 : a.op == AssignOp::kMul ? BinOp::kMul
                                          : BinOp::kDiv;
      do_compound(op, view(old), view(rhs), mask, rhs.data(), a.loc());
    }
    if (a.lhs->kind() == ExprKind::kVarRef) {
      const auto& v = static_cast<const VarRef&>(*a.lhs);
      store_var(v.sim_slot, v.name, mask, view(rhs), v.loc());
      return;
    }
    if (a.lhs->kind() == ExprKind::kArrayIndex) {
      (void)eval_index(static_cast<const ArrayIndex&>(*a.lhs), mask, &rhs);
      return;
    }
    throw SimError("invalid assignment target at " + a.loc().str());
  }
};

/// Everything one block produced, staged for the deterministic merge.
struct BlockOutcome {
  KernelStats stats;
  bool done = false;          // executed (possibly faulting); false when
                              // cooperative cancellation skipped the block
  bool ok = false;
  bool faulted = false;       // sanitized SimError, contained to the block
  bool tripped = false;       // sanitized watchdog trip; cancels the launch
  std::string fault_message;
  SourceLoc trip_loc;
  std::vector<HazardReport> reports;  // hazard stream, in execution order
  std::exception_ptr error;   // unsanitized failure, rethrown by the merge
};

}  // namespace

const char* to_string(Engine e) {
  switch (e) {
    case Engine::kAuto: return "auto";
    case Engine::kAst: return "ast";
    case Engine::kVm: return "vm";
    case Engine::kCheck: return "check";
  }
  return "?";
}

std::optional<Engine> engine_from_string(std::string_view s) {
  if (s == "auto") return Engine::kAuto;
  if (s == "ast") return Engine::kAst;
  if (s == "vm") return Engine::kVm;
  if (s == "check") return Engine::kCheck;
  return std::nullopt;
}

Engine resolve_engine(Engine requested) {
  if (requested != Engine::kAuto) return requested;
  if (const char* env = std::getenv("CUDANP_ENGINE")) {
    if (auto e = engine_from_string(env); e && *e != Engine::kAuto) return *e;
  }
  return Engine::kVm;
}

std::int64_t ExecutionLimits::resolve() const {
  return Interpreter::resolve_max_steps(max_steps_per_block, deadline_steps);
}

std::int64_t Interpreter::resolve_max_steps(std::int64_t requested) {
  if (requested > 0) return requested;
  if (requested < 0) return std::numeric_limits<std::int64_t>::max();
  if (const char* env = std::getenv("CUDANP_MAX_STEPS")) {
    // Checked parse: partial ("10x") or out-of-range values are ignored
    // (fall through to the default) instead of strtoll's prefix parse.
    if (auto v = parse_i64(env, 1, std::numeric_limits<std::int64_t>::max()))
      return *v;
  }
  return kDefaultMaxStepsPerBlock;
}

std::int64_t Interpreter::resolve_max_steps(std::int64_t requested,
                                            std::int64_t deadline_budget) {
  std::int64_t steps = resolve_max_steps(requested);
  if (deadline_budget > 0) steps = std::min(steps, deadline_budget);
  return steps;
}

void validate_launch(const DeviceSpec& spec, const LaunchConfig& cfg,
                     std::int64_t shared_mem_per_block) {
  auto bad_dim = [](const char* what, const Dim3& d) {
    return std::string("invalid launch: ") + what + " dimensions (" +
           std::to_string(d.x) + "," + std::to_string(d.y) + "," +
           std::to_string(d.z) + ") must all be positive";
  };
  if (cfg.grid.x <= 0 || cfg.grid.y <= 0 || cfg.grid.z <= 0)
    throw SimError(bad_dim("grid", cfg.grid));
  if (cfg.block.x <= 0 || cfg.block.y <= 0 || cfg.block.z <= 0)
    throw SimError(bad_dim("block", cfg.block));
  if (cfg.block.count() > spec.max_threads_per_block)
    throw SimError("invalid launch: block size " +
                   std::to_string(cfg.block.count()) +
                   " exceeds the device limit of " +
                   std::to_string(spec.max_threads_per_block) + " threads");
  if (shared_mem_per_block > spec.shared_mem_per_smx)
    throw SimError("invalid launch: " +
                   std::to_string(shared_mem_per_block) +
                   " bytes of shared memory per block exceed the SMX "
                   "capacity of " +
                   std::to_string(spec.shared_mem_per_smx) + " bytes");
}

KernelStats Interpreter::run(const Kernel& kernel, const LaunchConfig& cfg,
                             int resident_blocks_per_smx) {
  Engine engine = resolve_engine(opt_.engine);
  if (engine == Engine::kCheck)
    return run_checked(kernel, cfg, resident_blocks_per_smx);
  return run_engine(kernel, cfg, resident_blocks_per_smx, engine);
}

KernelStats Interpreter::run_engine(const Kernel& kernel,
                                    const LaunchConfig& cfg,
                                    int resident_blocks_per_smx,
                                    Engine engine) {
  validate_launch(spec_, cfg);

  const auto bound = bind_kernel(kernel);
  // Lowered once per launch (after any fault-injected AST corruption);
  // null means the lowering declined a construct and every block of this
  // launch runs on the AST walk instead — same semantics either way.
  std::shared_ptr<const bytecode::Program> program;
  if (engine == Engine::kVm) program = bytecode::lower(*bound);
  const std::int64_t nblocks = cfg.grid.count();
  const int jobs = ExecPool::resolve_jobs(opt_.jobs);
  const std::int64_t max_steps = opt_.limits.resolve();
  // One tripped (or erroring) block cooperatively cancels the blocks that
  // have not started yet; the ordered merge below re-runs any cancelled
  // block that precedes the first trip, so the outcome is bit-identical
  // to serial execution at every job count.
  std::atomic<bool> cancel{false};

  // Blocks are independent (they communicate only through __syncthreads
  // within themselves), so the grid runs on `jobs` host threads. Each
  // block writes its outcome to its own slot; nothing below touches the
  // shared SanitizerEngine until the ordered merge.
  std::vector<BlockOutcome> outcomes(static_cast<std::size_t>(nblocks));
  auto run_block = [&](std::int64_t i) {
    BlockOutcome& out = outcomes[static_cast<std::size_t>(i)];
    const Dim3 bidx{static_cast<int>(i % cfg.grid.x),
                    static_cast<int>((i / cfg.grid.x) % cfg.grid.y),
                    static_cast<int>(i / (cfg.grid.x * cfg.grid.y))};
    BlockSanitizer bs{opt_.sanitizer, {}};
    BlockSanitizer* bsp = opt_.sanitizer ? &bs : nullptr;
    try {
      if (program) {
        out.stats =
            vm::run_block(*program, spec_, mem_, opt_, *bound, cfg, bidx,
                          resident_blocks_per_smx, bsp, i, max_steps);
      } else {
        BlockExec block(spec_, mem_, opt_, *bound, cfg, bidx,
                        resident_blocks_per_smx, bsp, i, max_steps);
        out.stats = block.run();
      }
      out.ok = true;
    } catch (const WatchdogError& e) {
      if (opt_.sanitizer) {
        // A trip is not containable like a kSimFault: the same runaway
        // loop would burn the full budget in every remaining block, so
        // the launch is cancelled instead of kept going.
        out.tripped = true;
        out.fault_message = e.what();
        out.trip_loc = e.loc();
      } else {
        out.error = std::current_exception();
      }
      cancel.store(true, std::memory_order_relaxed);
    } catch (const SimError& e) {
      if (opt_.sanitizer) {
        // Keep-going mode: contain the fault to this block; the merge
        // records it after the block's earlier hazards, like the serial
        // engine did.
        out.faulted = true;
        out.fault_message = e.what();
      } else {
        out.error = std::current_exception();
        cancel.store(true, std::memory_order_relaxed);
      }
    } catch (...) {
      out.error = std::current_exception();
      cancel.store(true, std::memory_order_relaxed);
    }
    out.reports = std::move(bs.reports);
    out.done = true;
  };

  if (jobs <= 1 || nblocks <= 1) {
    for (std::int64_t i = 0; i < nblocks; ++i) {
      run_block(i);
      // Serial unsanitized runs abort at the first failing block, exactly
      // like the original grid loop; a sanitized trip likewise cancels
      // the remaining blocks (the merge discards everything after it).
      if (outcomes[static_cast<std::size_t>(i)].error)
        std::rethrow_exception(outcomes[static_cast<std::size_t>(i)].error);
      if (outcomes[static_cast<std::size_t>(i)].tripped) break;
    }
  } else {
    ExecPool::instance().parallel_for(nblocks, jobs, run_block, &cancel);
  }

  // Deterministic merge, in block-index order (== the old serial order):
  // replay each block's hazard stream through the shared engine so
  // dedupe, total counts and the error limit behave identically at every
  // job count, then fold stats of blocks that count.
  KernelStats total;
  bool stop = false;
  for (std::int64_t i = 0; i < nblocks && !stop; ++i) {
    BlockOutcome& out = outcomes[static_cast<std::size_t>(i)];
    // A block cancelled before it started may precede the first trip in
    // index order (a higher-index block can trip first under parallel
    // scheduling); run it inline now so the merge sees exactly the serial
    // prefix. Blocks at or past the first processed trip are never
    // reached — the merge stops there.
    if (!out.done) run_block(i);
    for (auto& r : out.reports) {
      try {
        opt_.sanitizer->report(std::move(r));
      } catch (const HazardLimitReached&) {
        stop = true;  // engine kept the triggering report
        break;
      }
    }
    if (stop) break;  // this block's stats are discarded, like serial
    if (out.error) std::rethrow_exception(out.error);
    if (out.ok) {
      total.add_block(out.stats);
    } else if (out.tripped) {
      HazardReport r;
      r.kind = HazardKind::kWatchdogTrip;
      r.kernel = kernel.name;
      r.block = Dim3{static_cast<int>(i % cfg.grid.x),
                     static_cast<int>((i / cfg.grid.x) % cfg.grid.y),
                     static_cast<int>(i / (cfg.grid.x * cfg.grid.y))};
      r.loc = out.trip_loc;
      r.message = out.fault_message;
      try {
        opt_.sanitizer->report(std::move(r));
      } catch (const HazardLimitReached&) {
      }
      // The launch is cancelled at the first (lowest-index) trip; later
      // blocks' outcomes are discarded, exactly like serial execution.
      stop = true;
    } else if (out.faulted) {
      HazardReport r;
      r.kind = HazardKind::kSimFault;
      r.kernel = kernel.name;
      r.block = Dim3{static_cast<int>(i % cfg.grid.x),
                     static_cast<int>((i / cfg.grid.x) % cfg.grid.y),
                     static_cast<int>(i / (cfg.grid.x * cfg.grid.y))};
      r.message = out.fault_message;
      try {
        opt_.sanitizer->report(std::move(r));
      } catch (const HazardLimitReached&) {
        stop = true;
      }
    }
  }
  // crit_path_cycles was summed per block; convert to the average block's
  // slowest-warp path.
  if (total.blocks > 0)
    total.crit_path_cycles /= static_cast<double>(total.blocks);
  return total;
}

namespace {

/// Byte-exact copy of every live buffer's payload, for the cross-check
/// engine's rewind between the AST and VM passes.
struct MemorySnapshot {
  struct Buf {
    std::vector<float> f;
    std::vector<std::int32_t> i;
  };
  std::vector<Buf> bufs;

  static MemorySnapshot capture(DeviceMemory& mem) {
    MemorySnapshot s;
    s.bufs.resize(mem.buffer_count());
    for (BufferId id = 0; id < mem.buffer_count(); ++id) {
      const DeviceBuffer& b = mem.buffer(id);
      if (b.discarded()) continue;
      if (b.type() == ScalarType::kFloat)
        s.bufs[id].f.assign(b.f32().begin(), b.f32().end());
      else
        s.bufs[id].i.assign(b.i32().begin(), b.i32().end());
    }
    return s;
  }

  void restore(DeviceMemory& mem) const {
    for (BufferId id = 0; id < bufs.size(); ++id) {
      DeviceBuffer& b = mem.buffer(id);
      if (b.discarded()) continue;
      if (b.type() == ScalarType::kFloat)
        std::copy(bufs[id].f.begin(), bufs[id].f.end(), b.f32().begin());
      else
        std::copy(bufs[id].i.begin(), bufs[id].i.end(), b.i32().begin());
    }
  }

  /// First buffer/element where `mem` differs bitwise, or "" if identical.
  [[nodiscard]] std::string diff(DeviceMemory& mem) const {
    for (BufferId id = 0; id < bufs.size(); ++id) {
      const DeviceBuffer& b = mem.buffer(id);
      if (b.discarded()) continue;
      if (b.type() == ScalarType::kFloat) {
        auto cur = b.f32();
        for (std::size_t e = 0; e < bufs[id].f.size(); ++e) {
          float a = bufs[id].f[e];
          float c = cur[e];
          // Bitwise compare so -0.0 vs 0.0 and NaN payloads count.
          std::uint32_t ab, cb;
          std::memcpy(&ab, &a, 4);
          std::memcpy(&cb, &c, 4);
          if (ab != cb)
            return "buffer " + std::to_string(id) + "[" + std::to_string(e) +
                   "]: ast=" + std::to_string(a) + " vm=" + std::to_string(c);
        }
      } else {
        auto cur = b.i32();
        for (std::size_t e = 0; e < bufs[id].i.size(); ++e)
          if (bufs[id].i[e] != cur[e])
            return "buffer " + std::to_string(id) + "[" + std::to_string(e) +
                   "]: ast=" + std::to_string(bufs[id].i[e]) +
                   " vm=" + std::to_string(cur[e]);
      }
    }
    return {};
  }
};

[[nodiscard]] std::string diff_stats(const KernelStats& a,
                                     const KernelStats& b) {
  auto d = [](const char* name, auto x, auto y) -> std::string {
    if (x == y) return {};
    std::ostringstream os;
    os << name << ": ast=" << x << " vm=" << y;
    return os.str();
  };
  std::string r;
  if (!(r = d("blocks", a.blocks, b.blocks)).empty()) return r;
  if (!(r = d("warps", a.warps, b.warps)).empty()) return r;
  if (!(r = d("issue_slots", a.issue_slots, b.issue_slots)).empty()) return r;
  if (!(r = d("global_transactions", a.global_transactions,
              b.global_transactions))
           .empty())
    return r;
  if (!(r = d("local_transactions", a.local_transactions,
              b.local_transactions))
           .empty())
    return r;
  if (!(r = d("local_l1_misses", a.local_l1_misses, b.local_l1_misses))
           .empty())
    return r;
  if (!(r = d("dram_transactions", a.dram_transactions, b.dram_transactions))
           .empty())
    return r;
  if (!(r = d("smem_accesses", a.smem_accesses, b.smem_accesses)).empty())
    return r;
  if (!(r = d("smem_replays", a.smem_replays, b.smem_replays)).empty())
    return r;
  if (!(r = d("shfl_ops", a.shfl_ops, b.shfl_ops)).empty()) return r;
  if (!(r = d("sync_ops", a.sync_ops, b.sync_ops)).empty()) return r;
  if (!(r = d("divergent_branches", a.divergent_branches,
              b.divergent_branches))
           .empty())
    return r;
  if (!(r = d("crit_path_cycles", a.crit_path_cycles, b.crit_path_cycles))
           .empty())
    return r;
  return {};
}

[[nodiscard]] std::string diff_reports(const std::vector<HazardReport>& a,
                                       const std::vector<HazardReport>& b,
                                       std::size_t from) {
  if (a.size() != b.size())
    return "hazard count: ast=" + std::to_string(a.size() - from) +
           " vm=" + std::to_string(b.size() - from);
  for (std::size_t i = from; i < a.size(); ++i) {
    const HazardReport& x = a[i];
    const HazardReport& y = b[i];
    if (x.kind != y.kind || x.kernel != y.kernel ||
        x.block.x != y.block.x || x.block.y != y.block.y ||
        x.block.z != y.block.z || x.thread != y.thread ||
        !(x.loc == y.loc) || x.message != y.message)
      return "hazard " + std::to_string(i - from) + ": ast={" + x.str() +
             "} vm={" + y.str() + "}";
  }
  return {};
}

}  // namespace

KernelStats Interpreter::run_checked(const Kernel& kernel,
                                     const LaunchConfig& cfg,
                                     int resident_blocks_per_smx) {
  const MemorySnapshot pre = MemorySnapshot::capture(mem_);

  // AST pass against a scratch copy of the sanitizer, so its hazard
  // stream can be compared without double-reporting into the real engine.
  SanitizerEngine* real = opt_.sanitizer;
  SanitizerEngine scratch;
  std::size_t base_reports = 0;
  if (real) {
    scratch = *real;
    base_reports = real->reports().size();
    opt_.sanitizer = &scratch;
  }
  KernelStats ast_stats;
  bool ast_threw = false;
  std::string ast_error;
  try {
    ast_stats = run_engine(kernel, cfg, resident_blocks_per_smx, Engine::kAst);
  } catch (const SimError& e) {
    ast_threw = true;
    ast_error = e.what();
  } catch (...) {
    opt_.sanitizer = real;
    throw;
  }
  opt_.sanitizer = real;
  const MemorySnapshot ast_mem = MemorySnapshot::capture(mem_);
  pre.restore(mem_);

  KernelStats vm_stats;
  bool vm_threw = false;
  std::string vm_error;
  std::exception_ptr vm_ex;
  try {
    vm_stats = run_engine(kernel, cfg, resident_blocks_per_smx, Engine::kVm);
  } catch (const SimError& e) {
    vm_threw = true;
    vm_error = e.what();
    vm_ex = std::current_exception();
  }

  if (ast_threw != vm_threw || ast_error != vm_error)
    throw SimError("engine cross-check: engines disagree on raised error "
                   "(ast: " +
                   (ast_threw ? ast_error : std::string("<none>")) +
                   "; vm: " + (vm_threw ? vm_error : std::string("<none>")) +
                   ")");
  if (std::string d = ast_mem.diff(mem_); !d.empty())
    throw SimError("engine cross-check: memory diverged at " + d);
  if (!ast_threw) {
    if (std::string d = diff_stats(ast_stats, vm_stats); !d.empty())
      throw SimError("engine cross-check: stats diverged on " + d);
  }
  if (real) {
    if (std::string d =
            diff_reports(scratch.reports(), real->reports(), base_reports);
        !d.empty())
      throw SimError("engine cross-check: hazard streams diverged on " + d);
  }
  if (vm_ex) std::rethrow_exception(vm_ex);
  return vm_stats;
}

RunResult run_and_time(const DeviceSpec& spec, DeviceMemory& mem,
                       const ir::Kernel& kernel, const LaunchConfig& cfg,
                       const ResourceUsage& resources,
                       Interpreter::Options opt) {
  RunResult r;
  validate_launch(spec, cfg, resources.shared_mem_per_block);
  r.occupancy = compute_occupancy(
      spec, static_cast<int>(cfg.block.count()), resources);
  if (r.occupancy.blocks_per_smx == 0)
    throw SimError("kernel '" + kernel.name +
                   "' cannot launch: occupancy zero (" +
                   r.occupancy.limiting_factor + ")");
  Interpreter interp(spec, mem, opt);
  r.stats = interp.run(kernel, cfg, r.occupancy.blocks_per_smx);
  TimingModel model(spec, opt.timing.weights);
  r.timing = model.estimate(r.stats, r.occupancy);
  return r;
}

}  // namespace cudanp::sim
