#include "sim/memory.hpp"

#include <algorithm>
#include <bit>

namespace cudanp::sim {

BufferId DeviceMemory::alloc(ir::ScalarType type, std::size_t elems) {
  for (auto it = free_.begin(); it != free_.end(); ++it) {
    DeviceBuffer& b = buffers_[*it];
    if (b.type() == type && b.size() == elems) {
      BufferId id = *it;
      free_.erase(it);
      free_bytes_ -= b.payload_bytes();
      b.clear();
      return id;
    }
  }
  const std::uint64_t kAlign = 256;
  std::uint64_t base = (next_addr_ + kAlign - 1) / kAlign * kAlign;
  std::uint64_t bytes =
      elems * static_cast<std::uint64_t>(ir::Type::scalar_size_bytes(type));
  next_addr_ = base + bytes;
  buffers_.emplace_back(type, elems, base);
  return static_cast<BufferId>(buffers_.size() - 1);
}

void DeviceMemory::release(BufferId id) {
  if (id >= buffers_.size()) throw SimError("invalid buffer id");
  if (buffers_[id].discarded()) throw SimError("buffer released twice");
  for (BufferId f : free_)
    if (f == id) throw SimError("buffer released twice");
  free_.push_back(id);
  free_bytes_ += buffers_[id].payload_bytes();
  trim_free_list();
}

void DeviceMemory::set_free_limit_bytes(std::uint64_t limit) {
  free_limit_bytes_ = limit;
  trim_free_list();
}

void DeviceMemory::trim_free_list() {
  std::size_t evicted = 0;
  while (free_bytes_ > free_limit_bytes_ && evicted < free_.size()) {
    DeviceBuffer& b = buffers_[free_[evicted]];
    free_bytes_ -= b.payload_bytes();
    b.discard();
    ++evicted;
  }
  if (evicted > 0)
    free_.erase(free_.begin(),
                free_.begin() + static_cast<std::ptrdiff_t>(evicted));
}

DeviceBuffer& DeviceMemory::buffer(BufferId id) {
  if (id >= buffers_.size()) throw SimError("invalid buffer id");
  return buffers_[id];
}

const DeviceBuffer& DeviceMemory::buffer(BufferId id) const {
  if (id >= buffers_.size()) throw SimError("invalid buffer id");
  return buffers_[id];
}

int coalesced_transactions(std::span<const std::uint64_t> addrs,
                           std::span<const std::uint8_t> active,
                           int segment_bytes) {
  // Count unique segment ids. Strided kernels touch a distinct segment
  // per lane, so dedupe through a 64-slot open-addressed set (load
  // factor <= 1/2 with <= 32 lanes) instead of a quadratic rescans.
  std::uint64_t segs[64];
  bool used[64] = {false};
  int n = 0;
  const std::uint64_t sb = static_cast<std::uint64_t>(segment_bytes);
  const bool pow2 = (sb & (sb - 1)) == 0;  // hardware sizes; div is hot
  const int shift = pow2 ? std::countr_zero(sb) : 0;
  std::uint64_t last = 0;
  bool have_last = false;
  for (std::size_t l = 0; l < addrs.size(); ++l) {
    if (!active[l]) continue;
    std::uint64_t seg = pow2 ? addrs[l] >> shift : addrs[l] / sb;
    if (have_last && seg == last) continue;  // sequential runs are common
    last = seg;
    have_last = true;
    std::size_t h = (seg * 0x9E3779B97F4A7C15ull) >> 58;
    bool seen = false;
    while (used[h]) {
      if (segs[h] == seg) {
        seen = true;
        break;
      }
      h = (h + 1) & 63;
    }
    if (!seen && n < 32) {
      used[h] = true;
      segs[h] = seg;
      ++n;
    }
  }
  return n;
}

int smem_replays(std::span<const std::uint64_t> word_addrs,
                 std::span<const std::uint8_t> active, int banks) {
  // For each bank, count distinct words requested; the access replays
  // max-over-banks times. Identical words broadcast for free.
  //
  // One pass over active lanes: dedupe the requested words (a warp holds
  // at most 32, so the distinct set fits on the stack), then tally each
  // distinct word's bank. The max tally equals the per-bank scan's
  // max-over-banks distinct count, and with <= 32 lanes neither
  // formulation's 32-entry cap can bind.
  std::uint64_t words[32];
  int bank_of[32];
  int n = 0;
  const std::uint64_t ub = static_cast<std::uint64_t>(banks);
  const std::uint64_t bmask = (ub & (ub - 1)) == 0 ? ub - 1 : 0;
  std::uint64_t last = 0;
  bool have_last = false;
  for (std::size_t l = 0; l < word_addrs.size(); ++l) {
    if (!active[l]) continue;
    const std::uint64_t w = word_addrs[l];
    if (have_last && w == last) continue;  // broadcast runs are common
    last = w;
    have_last = true;
    bool seen = false;
    for (int k = 0; k < n; ++k) {
      if (words[k] == w) {
        seen = true;
        break;
      }
    }
    if (!seen && n < 32) {
      bank_of[n] = static_cast<int>(bmask ? (w & bmask) : w % ub);
      words[n++] = w;
    }
  }
  int replays = 0;
  if (banks <= 64) {
    int cnt[64] = {0};
    for (int k = 0; k < n; ++k) replays = std::max(replays, ++cnt[bank_of[k]]);
  } else {
    for (int i = 0; i < n; ++i) {
      int c = 0;
      for (int j = 0; j <= i; ++j)
        if (bank_of[j] == bank_of[i]) ++c;
      replays = std::max(replays, c);
    }
  }
  return std::max(replays, 1);
}

L1Cache::L1Cache(std::int64_t capacity_bytes, int line_bytes, int ways)
    : capacity_(std::max<std::int64_t>(capacity_bytes, 0)),
      line_bytes_(line_bytes),
      ways_(ways) {
  std::int64_t lines = capacity_ / line_bytes_;
  num_sets_ = static_cast<std::size_t>(std::max<std::int64_t>(lines / ways_, 1));
  if (capacity_ > 0) {
    tags_.assign(num_sets_ * static_cast<std::size_t>(ways_), 0);
    lru_.assign(num_sets_ * static_cast<std::size_t>(ways_), 0);
  }
}

bool L1Cache::access(std::uint64_t addr) {
  if (capacity_ <= 0) return false;
  std::uint64_t line = addr / static_cast<std::uint64_t>(line_bytes_);
  std::size_t set = static_cast<std::size_t>(line) % num_sets_;
  std::uint64_t tag = line + 1;
  std::size_t base = set * static_cast<std::size_t>(ways_);
  ++clock_;
  for (int w = 0; w < ways_; ++w) {
    if (tags_[base + static_cast<std::size_t>(w)] == tag) {
      lru_[base + static_cast<std::size_t>(w)] = clock_;
      return true;
    }
  }
  // Miss: evict LRU way.
  std::size_t victim = base;
  for (int w = 1; w < ways_; ++w) {
    std::size_t i = base + static_cast<std::size_t>(w);
    if (lru_[i] < lru_[victim]) victim = i;
  }
  tags_[victim] = tag;
  lru_[victim] = clock_;
  return false;
}

void L1Cache::reset() {
  std::fill(tags_.begin(), tags_.end(), 0);
  std::fill(lru_.begin(), lru_.end(), 0);
  clock_ = 0;
}

}  // namespace cudanp::sim
