#include "sim/device.hpp"

#include <algorithm>

namespace cudanp::sim {

DeviceSpec DeviceSpec::gtx680() {
  DeviceSpec s;
  s.name = "GTX 680 (GK104)";
  s.sm_version = 30;
  s.num_smx = 8;
  s.registers_per_smx = 65536;
  s.shared_mem_per_smx = 48 * 1024;
  s.core_clock_ghz = 1.006;
  s.dram_bandwidth_gbs = 192.0;
  s.supports_dynamic_parallelism = false;
  return s;
}

DeviceSpec DeviceSpec::k20c() {
  DeviceSpec s;
  s.name = "Tesla K20c (GK110)";
  s.sm_version = 35;
  s.num_smx = 13;
  s.registers_per_smx = 65536;
  s.max_registers_per_thread = 255;
  s.shared_mem_per_smx = 48 * 1024;
  s.core_clock_ghz = 0.706;
  s.dram_bandwidth_gbs = 208.0;
  s.supports_dynamic_parallelism = true;
  return s;
}

Occupancy compute_occupancy(const DeviceSpec& spec, int threads_per_block,
                            const ResourceUsage& resources) {
  Occupancy occ;
  occ.threads_per_block = threads_per_block;
  if (threads_per_block <= 0 ||
      threads_per_block > spec.max_threads_per_block) {
    occ.limiting_factor = "invalid block size";
    return occ;
  }

  occ.warps_per_block =
      (threads_per_block + spec.warp_size - 1) / spec.warp_size;

  occ.limit_blocks = spec.max_blocks_per_smx;
  occ.limit_threads = spec.max_threads_per_smx / threads_per_block;

  // Registers are allocated per warp in granular chunks; we use the simple
  // per-thread model, which matches the paper's Table 1 byte accounting.
  int regs = std::clamp(resources.registers_per_thread, 1,
                        spec.max_registers_per_thread);
  std::int64_t regs_per_block =
      static_cast<std::int64_t>(regs) * threads_per_block;
  occ.limit_registers = static_cast<int>(spec.registers_per_smx /
                                         std::max<std::int64_t>(regs_per_block, 1));

  if (resources.shared_mem_per_block > spec.shared_mem_per_smx) {
    occ.limiting_factor = "smem";
    return occ;  // cannot launch
  }
  occ.limit_shared_mem =
      resources.shared_mem_per_block > 0
          ? static_cast<int>(spec.shared_mem_per_smx /
                             resources.shared_mem_per_block)
          : spec.max_blocks_per_smx;

  occ.blocks_per_smx =
      std::min({occ.limit_blocks, occ.limit_threads, occ.limit_registers,
                occ.limit_shared_mem});
  if (occ.blocks_per_smx <= 0) {
    occ.blocks_per_smx = 0;
    occ.limiting_factor = "registers";
    return occ;
  }
  occ.active_warps = occ.blocks_per_smx * occ.warps_per_block;
  if (occ.active_warps > spec.max_warps_per_smx) {
    occ.blocks_per_smx = spec.max_warps_per_smx / occ.warps_per_block;
    occ.active_warps = occ.blocks_per_smx * occ.warps_per_block;
  }

  int b = occ.blocks_per_smx;
  if (b == occ.limit_shared_mem && resources.shared_mem_per_block > 0)
    occ.limiting_factor = "smem";
  else if (b == occ.limit_registers)
    occ.limiting_factor = "registers";
  else if (b == occ.limit_threads)
    occ.limiting_factor = "threads";
  else
    occ.limiting_factor = "blocks";
  return occ;
}

}  // namespace cudanp::sim
