// Kernel launch configuration and argument binding.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "sim/memory.hpp"
#include "sim/value.hpp"

namespace cudanp::sim {

struct Dim3 {
  int x = 1;
  int y = 1;
  int z = 1;
  [[nodiscard]] std::int64_t count() const {
    return static_cast<std::int64_t>(x) * y * z;
  }
};

/// One kernel argument: a scalar or a global-memory buffer.
using KernelArg = std::variant<Value, BufferId>;

struct LaunchConfig {
  Dim3 grid;
  Dim3 block;
  std::vector<KernelArg> args;

  [[nodiscard]] std::int64_t total_threads() const {
    return grid.count() * block.count();
  }
  [[nodiscard]] static KernelArg scalar_int(std::int64_t v) {
    return Value::of_int(v);
  }
  [[nodiscard]] static KernelArg scalar_float(double v) {
    return Value::of_float(v);
  }
};

}  // namespace cudanp::sim
