// Tagged runtime value for the kernel interpreter.
//
// Integers are kept exact (int64), floats are stored as double but every
// assignment to a float-typed variable or float buffer rounds through
// float precision, so simulated kernels produce the same answers a real
// 32-bit-float GPU would (modulo reassociation, which the CPU references
// tolerate).
#pragma once

#include <cmath>
#include <cstdint>

namespace cudanp::sim {

struct Value {
  enum class Tag : std::uint8_t { kInt, kFloat };
  Tag tag = Tag::kInt;
  union {
    std::int64_t i;
    double f;
  };

  constexpr Value() : i(0) {}

  [[nodiscard]] static constexpr Value of_int(std::int64_t v) {
    Value x;
    x.tag = Tag::kInt;
    x.i = v;
    return x;
  }
  [[nodiscard]] static constexpr Value of_float(double v) {
    Value x;
    x.tag = Tag::kFloat;
    x.f = v;
    return x;
  }

  [[nodiscard]] constexpr bool is_float() const { return tag == Tag::kFloat; }

  [[nodiscard]] constexpr double as_f() const {
    return is_float() ? f : static_cast<double>(i);
  }
  [[nodiscard]] constexpr std::int64_t as_i() const {
    return is_float() ? static_cast<std::int64_t>(f) : i;
  }
  [[nodiscard]] constexpr bool truthy() const {
    return is_float() ? (f != 0.0) : (i != 0);
  }
  /// Rounds through 32-bit float precision (used on float stores).
  [[nodiscard]] Value to_f32() const {
    return of_float(static_cast<double>(static_cast<float>(as_f())));
  }
};

}  // namespace cudanp::sim
