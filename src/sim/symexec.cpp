// Symbolic executor implementation — model documented in sim/symexec.hpp.
//
// Layout of this file:
//   1. shared concrete-arithmetic helpers (exactly apply_binop / the math
//      builtin semantics, reused by constant folding and SymEvaluator)
//   2. SymArena: hash-consing, eager folding builders, normalization
//   3. the lockstep-vector executor (anonymous namespace `Exec`)
//   4. SymEvaluator
#include "sim/symexec.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <sstream>

#include "ir/stmt.hpp"
#include "support/rng.hpp"

namespace cudanp::sim {

namespace {

using ir::BinOp;
using ir::ScalarType;
using ir::UnOp;

/// Mirrors exec::BlockCore::apply_binop exactly (float results round
/// through f32, int64 exact); throws SymFault where the interpreter would
/// throw SimError.
Value eval_bin_value(BinOp op, Value a, Value b) {
  const bool fl = a.is_float() || b.is_float();
  switch (op) {
    case BinOp::kLAnd: return Value::of_int(a.truthy() && b.truthy());
    case BinOp::kLOr: return Value::of_int(a.truthy() || b.truthy());
    case BinOp::kBitAnd: return Value::of_int(a.as_i() & b.as_i());
    case BinOp::kBitOr: return Value::of_int(a.as_i() | b.as_i());
    case BinOp::kBitXor: return Value::of_int(a.as_i() ^ b.as_i());
    case BinOp::kShl: return Value::of_int(a.as_i() << b.as_i());
    case BinOp::kShr: return Value::of_int(a.as_i() >> b.as_i());
    case BinOp::kAdd:
      return fl ? Value::of_float(a.as_f() + b.as_f()).to_f32()
                : Value::of_int(a.i + b.i);
    case BinOp::kSub:
      return fl ? Value::of_float(a.as_f() - b.as_f()).to_f32()
                : Value::of_int(a.i - b.i);
    case BinOp::kMul:
      return fl ? Value::of_float(a.as_f() * b.as_f()).to_f32()
                : Value::of_int(a.i * b.i);
    case BinOp::kDiv:
      if (fl) return Value::of_float(a.as_f() / b.as_f()).to_f32();
      if (b.i == 0) throw SymFault{"integer division by zero"};
      return Value::of_int(a.i / b.i);
    case BinOp::kMod:
      if (fl) throw SymFault{"operator % requires integers"};
      if (b.i == 0) throw SymFault{"modulo by zero"};
      return Value::of_int(a.i % b.i);
    case BinOp::kLt: return Value::of_int(fl ? a.as_f() < b.as_f() : a.i < b.i);
    case BinOp::kLe:
      return Value::of_int(fl ? a.as_f() <= b.as_f() : a.i <= b.i);
    case BinOp::kGt: return Value::of_int(fl ? a.as_f() > b.as_f() : a.i > b.i);
    case BinOp::kGe:
      return Value::of_int(fl ? a.as_f() >= b.as_f() : a.i >= b.i);
    case BinOp::kEq:
      return Value::of_int(fl ? a.as_f() == b.as_f() : a.i == b.i);
    case BinOp::kNe:
      return Value::of_int(fl ? a.as_f() != b.as_f() : a.i != b.i);
  }
  throw SymFault{"unreachable binop"};
}

Value eval_un_value(UnOp op, Value x) {
  if (op == UnOp::kNeg)
    return x.is_float() ? Value::of_float(-x.f) : Value::of_int(-x.i);
  return Value::of_int(x.truthy() ? 0 : 1);
}

/// Mirrors the interpreter's do_unary_math / do_abs / do_binmath bindings.
Value eval_call_value(SymFn fn, const std::vector<Value>& xs) {
  auto um = [&](double (*f)(double)) {
    return Value::of_float(f(xs[0].as_f())).to_f32();
  };
  switch (fn) {
    case SymFn::kSqrt: return um([](double x) { return std::sqrt(x); });
    case SymFn::kFabs: return um([](double x) { return std::fabs(x); });
    case SymFn::kExp: return um([](double x) { return std::exp(x); });
    case SymFn::kLog: return um([](double x) { return std::log(x); });
    case SymFn::kSin: return um([](double x) { return std::sin(x); });
    case SymFn::kCos: return um([](double x) { return std::cos(x); });
    case SymFn::kFloor: return um([](double x) { return std::floor(x); });
    case SymFn::kRsqrt: return um([](double x) { return 1.0 / std::sqrt(x); });
    case SymFn::kAbs:
      return xs[0].is_float() ? Value::of_float(std::fabs(xs[0].as_f()))
                              : Value::of_int(std::abs(xs[0].i));
    case SymFn::kMin:
      return (xs[0].is_float() || xs[1].is_float())
                 ? Value::of_float(std::min(xs[0].as_f(), xs[1].as_f()))
                       .to_f32()
                 : Value::of_int(std::min(xs[0].i, xs[1].i));
    case SymFn::kMax:
      return (xs[0].is_float() || xs[1].is_float())
                 ? Value::of_float(std::max(xs[0].as_f(), xs[1].as_f()))
                       .to_f32()
                 : Value::of_int(std::max(xs[0].i, xs[1].i));
    case SymFn::kFminf:
      return Value::of_float(std::min(xs[0].as_f(), xs[1].as_f())).to_f32();
    case SymFn::kFmaxf:
      return Value::of_float(std::max(xs[0].as_f(), xs[1].as_f())).to_f32();
    case SymFn::kPowf:
      return Value::of_float(std::pow(xs[0].as_f(), xs[1].as_f())).to_f32();
  }
  throw SymFault{"unreachable builtin"};
}

Value coerce_value(Value v, ScalarType to) {
  switch (to) {
    case ScalarType::kFloat: return v.to_f32();
    case ScalarType::kInt:
    case ScalarType::kBool: return Value::of_int(v.as_i());
    case ScalarType::kVoid: return v;
  }
  return v;
}

std::uint64_t hash_node(const SymNode& n) {
  std::uint64_t h = 1469598103934665603ull;
  auto mix = [&](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  mix(static_cast<std::uint64_t>(n.kind));
  mix(static_cast<std::uint64_t>(n.type));
  mix(n.op);
  mix(static_cast<std::uint32_t>(n.param));
  mix(static_cast<std::uint64_t>(n.ival));
  std::uint64_t fb = 0;
  std::memcpy(&fb, &n.fval, sizeof fb);
  mix(fb);
  for (auto k : n.kids) mix(k);
  return h;
}

/// Bit-equality on fval so NaN / -0.0 intern consistently.
bool node_eq(const SymNode& a, const SymNode& b) {
  return a.kind == b.kind && a.type == b.type && a.op == b.op &&
         a.param == b.param && a.ival == b.ival &&
         std::memcmp(&a.fval, &b.fval, sizeof a.fval) == 0 && a.kids == b.kids;
}

std::uint64_t mix_pe(int param, std::int64_t elem) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(param)) + 1) *
             0x9e3779b97f4a7c15ULL ^
         static_cast<std::uint64_t>(elem) * 0xbf58476d1ce4e5b9ULL;
}

}  // namespace

float sym_float_input(std::uint64_t seed, int param, std::int64_t elem) {
  SplitMix64 rng(seed * 0x94d049bb133111ebULL ^ mix_pe(param, elem));
  return rng.next_float(-1.0f, 1.0f);
}

// ---------------------------------------------------------------------------
// SymArena
// ---------------------------------------------------------------------------

std::uint32_t SymArena::intern(SymNode&& n) {
  std::uint64_t h = hash_node(n);
  auto& bucket = index_[h];
  for (auto id : bucket)
    if (node_eq(nodes_[id], n)) return id;
  nodes_.push_back(std::move(n));
  auto id = static_cast<std::uint32_t>(nodes_.size() - 1);
  bucket.push_back(id);
  return id;
}

std::uint32_t SymArena::cint(std::int64_t v) {
  SymNode n;
  n.kind = SymKind::kConstInt;
  n.type = ScalarType::kInt;
  n.ival = v;
  return intern(std::move(n));
}

std::uint32_t SymArena::cfloat(double v) {
  SymNode n;
  n.kind = SymKind::kConstFloat;
  n.type = ScalarType::kFloat;
  n.fval = Value::of_float(v).to_f32().f;
  return intern(std::move(n));
}

std::uint32_t SymArena::input(std::int32_t param, std::int64_t elem,
                              ScalarType type) {
  SymNode n;
  n.kind = SymKind::kInput;
  n.type = type;
  n.param = param;
  n.ival = elem;
  return intern(std::move(n));
}

bool SymArena::constant(std::uint32_t id, Value* out) const {
  const SymNode& n = nodes_[id];
  if (n.kind == SymKind::kConstInt) {
    *out = Value::of_int(n.ival);
    return true;
  }
  if (n.kind == SymKind::kConstFloat) {
    *out = Value::of_float(n.fval);
    return true;
  }
  return false;
}

std::uint32_t SymArena::fold_bin(BinOp op, Value a, Value b) {
  Value r = eval_bin_value(op, a, b);
  return r.is_float() ? cfloat(r.f) : cint(r.i);
}

std::uint32_t SymArena::bin(BinOp op, std::uint32_t a, std::uint32_t b) {
  Value va, vb;
  if (constant(a, &va) && constant(b, &vb)) return fold_bin(op, va, vb);
  SymNode n;
  n.kind = SymKind::kBin;
  n.op = static_cast<std::uint8_t>(op);
  switch (op) {
    case BinOp::kAdd:
    case BinOp::kSub:
    case BinOp::kMul:
    case BinOp::kDiv:
      n.type = (nodes_[a].type == ScalarType::kFloat ||
                nodes_[b].type == ScalarType::kFloat)
                   ? ScalarType::kFloat
                   : ScalarType::kInt;
      break;
    default: n.type = ScalarType::kInt; break;
  }
  n.kids = {a, b};
  return intern(std::move(n));
}

std::uint32_t SymArena::un(UnOp op, std::uint32_t a) {
  Value v;
  if (constant(a, &v)) {
    Value r = eval_un_value(op, v);
    return r.is_float() ? cfloat(r.f) : cint(r.i);
  }
  SymNode n;
  n.kind = SymKind::kUnary;
  n.op = static_cast<std::uint8_t>(op);
  n.type = op == UnOp::kNeg ? nodes_[a].type : ScalarType::kInt;
  n.kids = {a};
  return intern(std::move(n));
}

std::uint32_t SymArena::call(SymFn fn, std::vector<std::uint32_t> kids) {
  std::vector<Value> vals(kids.size());
  bool all_const = true;
  bool any_float = false;
  for (std::size_t i = 0; i < kids.size(); ++i) {
    all_const = all_const && constant(kids[i], &vals[i]);
    any_float = any_float || nodes_[kids[i]].type == ScalarType::kFloat;
  }
  if (all_const) {
    Value r = eval_call_value(fn, vals);
    return r.is_float() ? cfloat(r.f) : cint(r.i);
  }
  SymNode n;
  n.kind = SymKind::kCall;
  n.op = static_cast<std::uint8_t>(fn);
  n.type = (fn == SymFn::kAbs || fn == SymFn::kMin || fn == SymFn::kMax)
               ? (any_float ? ScalarType::kFloat : ScalarType::kInt)
               : ScalarType::kFloat;
  n.kids = std::move(kids);
  return intern(std::move(n));
}

std::uint32_t SymArena::cast(ScalarType to, std::uint32_t a) {
  if (to == ScalarType::kVoid) return a;
  ScalarType target =
      to == ScalarType::kFloat ? ScalarType::kFloat : ScalarType::kInt;
  // Symbolic float expressions are f32-rounded by construction and int
  // expressions are exact int64, so a same-type cast is the identity.
  if (nodes_[a].type == target) return a;
  Value v;
  if (constant(a, &v)) {
    Value r = coerce_value(v, target);
    return r.is_float() ? cfloat(r.f) : cint(r.i);
  }
  SymNode n;
  n.kind = SymKind::kCast;
  n.op = static_cast<std::uint8_t>(target);
  n.type = target;
  n.kids = {a};
  return intern(std::move(n));
}

std::uint32_t SymArena::select(std::uint32_t c, std::uint32_t a,
                               std::uint32_t b) {
  Value cv;
  if (constant(c, &cv)) return cv.truthy() ? a : b;
  if (a == b) return a;
  SymNode n;
  n.kind = SymKind::kSelect;
  n.type = (nodes_[a].type == ScalarType::kFloat ||
            nodes_[b].type == ScalarType::kFloat)
               ? ScalarType::kFloat
               : ScalarType::kInt;
  n.kids = {c, a, b};
  return intern(std::move(n));
}

std::uint32_t SymArena::gather(std::uint32_t idx,
                               const std::vector<std::uint32_t>& cells,
                               ScalarType type) {
  Value iv;
  if (constant(idx, &iv)) {
    std::int64_t i = iv.as_i();
    if (i < 0 || i >= static_cast<std::int64_t>(cells.size()))
      throw SymFault{"gather index " + std::to_string(i) +
                     " out of range [0," + std::to_string(cells.size()) + ")"};
    return cells[static_cast<std::size_t>(i)];
  }
  bool uniform = true;
  for (auto c : cells)
    if (c != cells[0]) {
      uniform = false;
      break;
    }
  if (uniform && !cells.empty()) return cells[0];
  SymNode n;
  n.kind = SymKind::kGather;
  n.type = type;
  n.kids.reserve(cells.size() + 1);
  n.kids.push_back(idx);
  n.kids.insert(n.kids.end(), cells.begin(), cells.end());
  return intern(std::move(n));
}

std::uint32_t SymArena::nary(SymNaryOp op, ScalarType type,
                             std::vector<std::uint32_t> kids) {
  SymNode n;
  n.kind = SymKind::kNary;
  n.op = static_cast<std::uint8_t>(op);
  n.type = type;
  n.kids = std::move(kids);
  return intern(std::move(n));
}

namespace {

Value combine_nary(SymNaryOp op, Value a, Value b) {
  switch (op) {
    case SymNaryOp::kAdd: return eval_bin_value(BinOp::kAdd, a, b);
    case SymNaryOp::kMul: return eval_bin_value(BinOp::kMul, a, b);
    case SymNaryOp::kMin: return eval_call_value(SymFn::kMin, {a, b});
    case SymNaryOp::kMax: return eval_call_value(SymFn::kMax, {a, b});
  }
  return a;
}

}  // namespace

std::uint32_t SymArena::make_nary(SymNaryOp op, ScalarType type,
                                  std::vector<std::uint32_t> operands) {
  // Flatten same-op sub-chains (AC), fold constants in encounter order,
  // drop the neutral element (0 for +, 1 for *), dedupe idempotent
  // min/max operands, sort by interned id.
  std::vector<std::uint32_t> flat;
  for (auto o : operands) {
    const SymNode& on = nodes_[o];
    if (on.kind == SymKind::kNary && static_cast<SymNaryOp>(on.op) == op)
      flat.insert(flat.end(), on.kids.begin(), on.kids.end());
    else
      flat.push_back(o);
  }
  bool have_c = false;
  Value acc{};
  std::vector<std::uint32_t> rest;
  bool any_float = type == ScalarType::kFloat;
  for (auto o : flat) {
    Value v;
    if (constant(o, &v)) {
      acc = have_c ? combine_nary(op, acc, v) : v;
      have_c = true;
    } else {
      rest.push_back(o);
      any_float = any_float || nodes_[o].type == ScalarType::kFloat;
    }
  }
  if (have_c) {
    any_float = any_float || acc.is_float();
    bool neutral = false;
    if (op == SymNaryOp::kAdd)
      neutral = acc.is_float() ? acc.f == 0.0 : acc.i == 0;
    else if (op == SymNaryOp::kMul)
      neutral = acc.is_float() ? acc.f == 1.0 : acc.i == 1;
    if (!neutral || rest.empty())
      rest.push_back(acc.is_float() ? cfloat(acc.f) : cint(acc.i));
  }
  // Reduction chains normalize prefix-by-prefix, so the flattened kids
  // usually arrive already sorted; skipping the sort keeps a length-k
  // chain O(k) per prefix instead of O(k log k).
  if (!std::is_sorted(rest.begin(), rest.end()))
    std::sort(rest.begin(), rest.end());
  if (op == SymNaryOp::kMin || op == SymNaryOp::kMax)
    rest.erase(std::unique(rest.begin(), rest.end()), rest.end());
  if (rest.size() == 1) return rest[0];
  return nary(op, any_float ? ScalarType::kFloat : ScalarType::kInt,
              std::move(rest));
}

std::uint32_t SymArena::normalize(std::uint32_t id) {
  if (id == kInvalid) return id;
  auto it = norm_memo_.find(id);
  if (it != norm_memo_.end()) return it->second;
  const SymNode n = nodes_[id];  // copy: builders below may grow nodes_
  std::uint32_t r = id;
  switch (n.kind) {
    case SymKind::kConstInt:
    case SymKind::kConstFloat:
    case SymKind::kInput:
    case SymKind::kNary:  // only the normalizer creates these, canonically
      r = id;
      break;
    case SymKind::kBin: {
      std::uint32_t a = normalize(n.kids[0]);
      std::uint32_t b = normalize(n.kids[1]);
      auto op = static_cast<BinOp>(n.op);
      switch (op) {
        case BinOp::kAdd:
          r = make_nary(SymNaryOp::kAdd, n.type, {a, b});
          break;
        case BinOp::kSub:
          r = make_nary(
              SymNaryOp::kAdd, n.type,
              {a, make_nary(SymNaryOp::kMul, nodes_[b].type, {cint(-1), b})});
          break;
        case BinOp::kMul:
          r = make_nary(SymNaryOp::kMul, n.type, {a, b});
          break;
        case BinOp::kGt: r = bin(BinOp::kLt, b, a); break;
        case BinOp::kGe: r = bin(BinOp::kLe, b, a); break;
        case BinOp::kEq:
        case BinOp::kNe:
        case BinOp::kLAnd:
        case BinOp::kLOr:
        case BinOp::kBitAnd:
        case BinOp::kBitOr:
        case BinOp::kBitXor:
          if (a > b) std::swap(a, b);
          r = bin(op, a, b);
          break;
        default: r = bin(op, a, b); break;
      }
      break;
    }
    case SymKind::kUnary: {
      std::uint32_t a = normalize(n.kids[0]);
      if (static_cast<UnOp>(n.op) == UnOp::kNeg)
        r = make_nary(SymNaryOp::kMul, nodes_[a].type, {cint(-1), a});
      else
        r = un(UnOp::kLNot, a);
      break;
    }
    case SymKind::kCall: {
      std::vector<std::uint32_t> kids;
      kids.reserve(n.kids.size());
      for (auto k : n.kids) kids.push_back(normalize(k));
      auto fn = static_cast<SymFn>(n.op);
      if (fn == SymFn::kMin || fn == SymFn::kFminf)
        r = make_nary(SymNaryOp::kMin, n.type, std::move(kids));
      else if (fn == SymFn::kMax || fn == SymFn::kFmaxf)
        r = make_nary(SymNaryOp::kMax, n.type, std::move(kids));
      else
        r = call(fn, std::move(kids));
      break;
    }
    case SymKind::kCast:
      r = cast(static_cast<ScalarType>(n.op), normalize(n.kids[0]));
      break;
    case SymKind::kSelect: {
      std::uint32_t c = normalize(n.kids[0]);
      std::uint32_t t = normalize(n.kids[1]);
      std::uint32_t e = normalize(n.kids[2]);
      Value cv;
      if (constant(c, &cv)) {
        r = cv.truthy() ? t : e;
        break;
      }
      if (t == e) {
        r = t;
        break;
      }
      const SymNode& cn = nodes_[c];
      bool made = false;
      if (cn.kind == SymKind::kBin) {
        auto cop = static_cast<BinOp>(cn.op);
        if (cop == BinOp::kLt || cop == BinOp::kLe) {
          std::uint32_t x = cn.kids[0], y = cn.kids[1];
          ScalarType ty = (nodes_[t].type == ScalarType::kFloat ||
                           nodes_[e].type == ScalarType::kFloat)
                              ? ScalarType::kFloat
                              : ScalarType::kInt;
          if (t == x && e == y) {
            r = make_nary(SymNaryOp::kMin, ty, {x, y});
            made = true;
          } else if (t == y && e == x) {
            r = make_nary(SymNaryOp::kMax, ty, {x, y});
            made = true;
          }
        }
      }
      if (!made) r = select(c, t, e);
      break;
    }
    case SymKind::kGather: {
      std::uint32_t idx = normalize(n.kids[0]);
      std::vector<std::uint32_t> cells;
      cells.reserve(n.kids.size() - 1);
      for (std::size_t i = 1; i < n.kids.size(); ++i)
        cells.push_back(normalize(n.kids[i]));
      r = gather(idx, cells, n.type);
      break;
    }
  }
  norm_memo_[id] = r;
  return r;
}

std::string SymArena::str(std::uint32_t id, int max_depth) const {
  if (id == kInvalid) return "<uninit>";
  const SymNode& n = nodes_[id];
  if (max_depth <= 0) return "...";
  std::ostringstream os;
  auto kid = [&](std::size_t i) { return str(n.kids[i], max_depth - 1); };
  switch (n.kind) {
    case SymKind::kConstInt: os << n.ival; break;
    case SymKind::kConstFloat: os << n.fval << "f"; break;
    case SymKind::kInput:
      if (n.ival < 0)
        os << "arg" << n.param;
      else
        os << "in" << n.param << "[" << n.ival << "]";
      break;
    case SymKind::kBin:
      os << "(" << kid(0) << " " << ir::to_string(static_cast<BinOp>(n.op))
         << " " << kid(1) << ")";
      break;
    case SymKind::kUnary:
      os << ir::to_string(static_cast<UnOp>(n.op)) << kid(0);
      break;
    case SymKind::kCall: {
      static const char* kNames[] = {"sqrtf", "fabsf", "expf",  "logf",
                                     "sinf",  "cosf",  "floorf", "rsqrtf",
                                     "abs",   "min",   "max",   "fminf",
                                     "fmaxf", "powf"};
      os << kNames[n.op] << "(";
      for (std::size_t i = 0; i < n.kids.size(); ++i)
        os << (i ? ", " : "") << kid(i);
      os << ")";
      break;
    }
    case SymKind::kCast:
      os << "(" << ir::to_string(static_cast<ScalarType>(n.op)) << ")"
         << kid(0);
      break;
    case SymKind::kSelect:
      os << "(" << kid(0) << " ? " << kid(1) << " : " << kid(2) << ")";
      break;
    case SymKind::kGather:
      os << "gather[" << (n.kids.size() - 1) << "](" << kid(0) << ")";
      break;
    case SymKind::kNary: {
      static const char* kOps[] = {" + ", " * ", " min ", " max "};
      os << "(";
      for (std::size_t i = 0; i < n.kids.size(); ++i)
        os << (i ? kOps[n.op] : "") << kid(i);
      os << ")";
      break;
    }
  }
  return os.str();
}

// ---------------------------------------------------------------------------
// Executor
// ---------------------------------------------------------------------------

namespace {

constexpr std::uint32_t kInv = SymArena::kInvalid;

using Mask = std::vector<std::uint8_t>;
using IdVec = std::vector<std::uint32_t>;

bool any(const Mask& m) {
  for (auto b : m)
    if (b) return true;
  return false;
}

/// Non-SymFault abort: unsupported construct (fault = false) or a
/// deterministic interpreter fault (fault = true).
struct Abort {
  std::string reason;
  bool fault = false;
};

struct CellMeta {
  std::int64_t wepoch = -1, repoch = -1;  // within the current block
  int wwarp = -1, rwarp = -1;             // rwarp -2 = several warps
  std::int64_t wseq = -1;                 // same-statement store conflicts
  std::int64_t wblock = -1;               // globals: last writer block
};

struct Var {
  ir::Type type;
  bool live = false;
  bool is_buffer = false;     // pointer param
  int arg = -1;
  bool uniform = false;       // scalar param (read-only)
  bool block_scoped = false;  // shared array: one copy per block
  IdVec scalar;               // per-lane scalar ids
  IdVec cells;                // block_scoped: [elems]; else [lane*elems+e]
  std::vector<CellMeta> meta;  // shared arrays: race tracking per cell
};

struct GBuf {
  ScalarType type = ScalarType::kFloat;
  IdVec cells;
  std::vector<CellMeta> meta;
};

class Exec {
 public:
  Exec(const ir::Kernel& k, Dim3 grid, Dim3 block,
       const std::vector<SymArg>& args, SymArena& arena,
       const SymExecOptions& opt)
      : kernel_(k), grid_(grid), block_(block), args_(args), ar_(arena),
        opt_(opt) {}

  SymExecResult run() {
    SymExecResult res;
    try {
      setup();
      for (int bz = 0; bz < grid_.z; ++bz)
        for (int by = 0; by < grid_.y; ++by)
          for (int bx = 0; bx < grid_.x; ++bx) {
            begin_block(bx, by, bz);
            Mask all(static_cast<std::size_t>(nlanes_), 1);
            exec_block(*kernel_.body, all);
          }
      res.ok = true;
      res.buffers.resize(args_.size());
      for (std::size_t i = 0; i < args_.size(); ++i)
        if (!globals_[i].cells.empty()) res.buffers[i] = globals_[i].cells;
    } catch (const Abort& a) {
      res.reason = a.reason;
      res.fault = a.fault;
    } catch (const SymFault& f) {
      res.reason = f.message;
      res.fault = true;
    }
    res.races = std::move(races_);
    res.steps = steps_;
    return res;
  }

 private:
  // ---------------- setup ----------------
  void setup() {
    if (grid_.x <= 0 || grid_.y <= 0 || grid_.z <= 0 || block_.x <= 0 ||
        block_.y <= 0 || block_.z <= 0)
      throw Abort{"invalid launch dimensions", true};
    if (block_.count() > 1024) throw Abort{"block too large", true};
    nlanes_ = static_cast<int>(block_.count());
    if (args_.size() != kernel_.params.size())
      throw Abort{"kernel '" + kernel_.name + "' expects " +
                      std::to_string(kernel_.params.size()) + " args, got " +
                      std::to_string(args_.size()),
                  true};
    globals_.resize(args_.size());
    for (std::size_t i = 0; i < args_.size(); ++i) {
      const ir::Param& p = kernel_.params[i];
      const SymArg& a = args_[i];
      if (!p.type.is_pointer) continue;
      GBuf& g = globals_[i];
      g.type = p.type.scalar;
      g.cells.resize(static_cast<std::size_t>(a.elems), kInv);
      g.meta.assign(static_cast<std::size_t>(a.elems), CellMeta{});
      auto pi = static_cast<std::int32_t>(i);
      switch (a.kind) {
        case SymArg::Kind::kBufferSymbolic:
          if (g.type != ScalarType::kFloat)
            throw Abort{"arg " + std::to_string(i) + " ('" + p.name +
                            "'): symbolic buffers must be float",
                        false};
          for (std::int64_t e = 0; e < a.elems; ++e)
            g.cells[static_cast<std::size_t>(e)] =
                ar_.input(pi, e, ScalarType::kFloat);
          break;
        case SymArg::Kind::kBufferConcrete:
          if (static_cast<std::int64_t>(a.ints.size()) != a.elems)
            throw Abort{"arg " + std::to_string(i) + " ('" + p.name +
                            "'): concrete buffer contents missing",
                        false};
          for (std::int64_t e = 0; e < a.elems; ++e) {
            auto ci = a.ints[static_cast<std::size_t>(e)];
            g.cells[static_cast<std::size_t>(e)] =
                g.type == ScalarType::kFloat
                    ? ar_.cfloat(static_cast<double>(ci))
                    : ar_.cint(ci);
          }
          break;
        case SymArg::Kind::kBufferScratch: break;  // uninitialized
        default:
          throw Abort{"arg " + std::to_string(i) + " ('" + p.name +
                          "') must be a buffer",
                      true};
      }
    }
  }

  void begin_block(int bx, int by, int bz) {
    blk_ = static_cast<std::int64_t>(bz) * grid_.x * grid_.y +
           static_cast<std::int64_t>(by) * grid_.x + bx;
    vars_.clear();
    preds_.clear();
    returned_.assign(static_cast<std::size_t>(nlanes_), 0);
    epoch_ = 0;
    seq_ = 0;
    for (auto& g : globals_)
      for (auto& m : g.meta) {
        m.wepoch = m.repoch = -1;
        m.wwarp = m.rwarp = -1;
        m.wseq = -1;
      }
    // Geometry lane vectors (same lane order as exec::BlockCore).
    auto splat_i = [&](std::int64_t v) {
      return IdVec(static_cast<std::size_t>(nlanes_), ar_.cint(v));
    };
    geom_.clear();
    IdVec tx(static_cast<std::size_t>(nlanes_)),
        ty(static_cast<std::size_t>(nlanes_)),
        tz(static_cast<std::size_t>(nlanes_));
    for (int l = 0; l < nlanes_; ++l) {
      auto li = static_cast<std::size_t>(l);
      tx[li] = ar_.cint(l % block_.x);
      ty[li] = ar_.cint((l / block_.x) % block_.y);
      tz[li] = ar_.cint(l / (block_.x * block_.y));
    }
    geom_["threadIdx.x"] = std::move(tx);
    geom_["threadIdx.y"] = std::move(ty);
    geom_["threadIdx.z"] = std::move(tz);
    geom_["blockIdx.x"] = splat_i(bx);
    geom_["blockIdx.y"] = splat_i(by);
    geom_["blockIdx.z"] = splat_i(bz);
    geom_["blockDim.x"] = splat_i(block_.x);
    geom_["blockDim.y"] = splat_i(block_.y);
    geom_["blockDim.z"] = splat_i(block_.z);
    geom_["gridDim.x"] = splat_i(grid_.x);
    geom_["gridDim.y"] = splat_i(grid_.y);
    geom_["gridDim.z"] = splat_i(grid_.z);
    // Parameters.
    for (std::size_t i = 0; i < kernel_.params.size(); ++i) {
      const ir::Param& p = kernel_.params[i];
      const SymArg& a = args_[i];
      Var v;
      v.type = p.type;
      v.live = true;
      if (p.type.is_pointer) {
        v.is_buffer = true;
        v.arg = static_cast<int>(i);
      } else {
        v.uniform = true;
        std::uint32_t id;
        if (a.kind == SymArg::Kind::kScalarSymbolic) {
          id = ar_.input(static_cast<std::int32_t>(i), -1, ScalarType::kFloat);
        } else if (p.type.scalar == ScalarType::kFloat) {
          id = ar_.cfloat(a.scalar.as_f());
        } else {
          id = ar_.cint(a.scalar.as_i());
        }
        v.scalar.assign(static_cast<std::size_t>(nlanes_), id);
      }
      vars_[p.name] = std::move(v);
    }
  }

  // ---------------- bookkeeping ----------------
  void count_step() {
    if (++steps_ > opt_.max_steps)
      throw Abort{"step budget of " + std::to_string(opt_.max_steps) +
                  " exhausted"};
    if (static_cast<std::int64_t>(ar_.size()) > opt_.max_nodes)
      throw Abort{"expression budget of " + std::to_string(opt_.max_nodes) +
                  " nodes exhausted"};
  }

  int warp_of(int lane) const { return lane / opt_.warp_size; }

  void race(const std::string& msg) {
    if (races_.size() < 64) races_.push_back(SymRace{msg});
  }

  Var& lookup(const std::string& name, const char* what) {
    auto it = vars_.find(name);
    if (it == vars_.end() || !it->second.live)
      throw Abort{std::string("use of undeclared variable '") + name +
                  "' in " + what};
    return it->second;
  }

  IdVec splat(std::uint32_t id) const {
    return IdVec(static_cast<std::size_t>(nlanes_), id);
  }

  // ---------------- expression evaluation ----------------
  IdVec eval(const ir::Expr& e, const Mask& m) {
    switch (e.kind()) {
      case ir::ExprKind::kIntLit:
        return splat(ar_.cint(static_cast<const ir::IntLit&>(e).value));
      case ir::ExprKind::kFloatLit:
        return splat(ar_.cfloat(static_cast<const ir::FloatLit&>(e).value));
      case ir::ExprKind::kVarRef:
        return eval_varref(static_cast<const ir::VarRef&>(e), m);
      case ir::ExprKind::kArrayIndex:
        return access(static_cast<const ir::ArrayIndex&>(e), m, nullptr);
      case ir::ExprKind::kBinary: {
        const auto& b = static_cast<const ir::BinaryExpr&>(e);
        // Both sides evaluate under the full mask (no short-circuit),
        // matching the vector interpreter.
        IdVec l = eval(*b.lhs, m);
        IdVec r = eval(*b.rhs, m);
        for (int i = 0; i < nlanes_; ++i) {
          auto li = static_cast<std::size_t>(i);
          if (!m[li]) continue;
          l[li] = (l[li] == kInv || r[li] == kInv) ? kInv
                                                   : ar_.bin(b.op, l[li], r[li]);
        }
        return l;
      }
      case ir::ExprKind::kUnary: {
        const auto& u = static_cast<const ir::UnaryExpr&>(e);
        IdVec v = eval(*u.operand, m);
        for (int i = 0; i < nlanes_; ++i) {
          auto li = static_cast<std::size_t>(i);
          if (m[li] && v[li] != kInv) v[li] = ar_.un(u.op, v[li]);
        }
        return v;
      }
      case ir::ExprKind::kCall:
        return eval_call(static_cast<const ir::CallExpr&>(e), m);
      case ir::ExprKind::kTernary: {
        const auto& t = static_cast<const ir::TernaryExpr&>(e);
        IdVec c = eval(*t.cond, m);
        IdVec a = eval(*t.then_value, m);
        IdVec b = eval(*t.else_value, m);
        for (int i = 0; i < nlanes_; ++i) {
          auto li = static_cast<std::size_t>(i);
          if (!m[li]) continue;
          a[li] = (c[li] == kInv || a[li] == kInv || b[li] == kInv)
                      ? kInv
                      : ar_.select(c[li], a[li], b[li]);
        }
        return a;
      }
      case ir::ExprKind::kCast: {
        const auto& c = static_cast<const ir::CastExpr&>(e);
        IdVec v = eval(*c.operand, m);
        for (int i = 0; i < nlanes_; ++i) {
          auto li = static_cast<std::size_t>(i);
          if (m[li] && v[li] != kInv) v[li] = ar_.cast(c.to, v[li]);
        }
        return v;
      }
    }
    throw Abort{"unreachable expression kind"};
  }

  IdVec eval_varref(const ir::VarRef& v, const Mask& m) {
    auto git = geom_.find(v.name);
    if (git != geom_.end()) return git->second;
    Var& var = lookup(v.name, "expression");
    if (var.is_buffer || var.type.is_array())
      throw Abort{"array '" + v.name + "' used as a value"};
    IdVec out = var.scalar;
    if (shfl_depth_ == 0)
      for (int l = 0; l < nlanes_; ++l)
        if (m[static_cast<std::size_t>(l)] &&
            out[static_cast<std::size_t>(l)] == kInv)
          throw Abort{"read of uninitialized variable '" + v.name + "'"};
    return out;
  }

  IdVec eval_call(const ir::CallExpr& c, const Mask& m) {
    const std::string& f = c.callee;
    if (f == "__syncthreads") {
      barrier(m);
      return splat(ar_.cint(0));
    }
    if (f == "__shfl" || f == "__shfl_up" || f == "__shfl_down" ||
        f == "__shfl_xor")
      return eval_shfl(c, m);
    struct FnMap {
      const char* name;
      SymFn fn;
      int arity;
    };
    static const FnMap kFns[] = {
        {"sqrtf", SymFn::kSqrt, 1},   {"sqrt", SymFn::kSqrt, 1},
        {"fabsf", SymFn::kFabs, 1},   {"fabs", SymFn::kFabs, 1},
        {"expf", SymFn::kExp, 1},     {"exp", SymFn::kExp, 1},
        {"__expf", SymFn::kExp, 1},   {"logf", SymFn::kLog, 1},
        {"log", SymFn::kLog, 1},      {"__logf", SymFn::kLog, 1},
        {"sinf", SymFn::kSin, 1},     {"__sinf", SymFn::kSin, 1},
        {"cosf", SymFn::kCos, 1},     {"__cosf", SymFn::kCos, 1},
        {"floorf", SymFn::kFloor, 1}, {"rsqrtf", SymFn::kRsqrt, 1},
        {"abs", SymFn::kAbs, 1},      {"min", SymFn::kMin, 2},
        {"max", SymFn::kMax, 2},      {"fminf", SymFn::kFminf, 2},
        {"fmaxf", SymFn::kFmaxf, 2},  {"powf", SymFn::kPowf, 2},
    };
    for (const auto& fm : kFns) {
      if (f != fm.name) continue;
      if (static_cast<int>(c.args.size()) != fm.arity)
        throw Abort{f + " expects " + std::to_string(fm.arity) + " argument(s)",
                    true};
      std::vector<IdVec> xs;
      xs.reserve(c.args.size());
      for (const auto& a : c.args) xs.push_back(eval(*a, m));
      IdVec out(static_cast<std::size_t>(nlanes_), kInv);
      for (int l = 0; l < nlanes_; ++l) {
        auto li = static_cast<std::size_t>(l);
        if (!m[li]) continue;
        std::vector<std::uint32_t> kids;
        kids.reserve(xs.size());
        bool bad = false;
        for (const auto& x : xs) {
          bad = bad || x[li] == kInv;
          kids.push_back(x[li]);
        }
        out[li] = bad ? kInv : ar_.call(fm.fn, std::move(kids));
      }
      return out;
    }
    throw Abort{"call to unknown function '" + f + "'"};
  }

  Mask broaden(const Mask& m) const {
    Mask broad(static_cast<std::size_t>(nlanes_), 0);
    for (int w = 0; w * opt_.warp_size < nlanes_; ++w) {
      int lo = w * opt_.warp_size;
      int hi = std::min(lo + opt_.warp_size, nlanes_);
      bool active = false;
      for (int l = lo; l < hi; ++l) active = active || m[static_cast<std::size_t>(l)];
      if (active)
        for (int l = lo; l < hi; ++l) broad[static_cast<std::size_t>(l)] = 1;
    }
    return broad;
  }

  IdVec eval_shfl(const ir::CallExpr& c, const Mask& m) {
    if (div_depth_ > 0)
      throw Abort{"__shfl under a symbolically divergent branch"};
    if (c.args.size() != 3)
      throw Abort{c.callee + " expects (var, lane, width)", true};
    Mask broad = broaden(m);
    ++shfl_depth_;
    IdVec var = eval(*c.args[0], broad);
    --shfl_depth_;
    IdVec sel = eval(*c.args[1], m);
    IdVec wid = eval(*c.args[2], m);
    IdVec out(static_cast<std::size_t>(nlanes_), kInv);
    for (int l = 0; l < nlanes_; ++l) {
      auto li = static_cast<std::size_t>(l);
      if (!m[li]) continue;
      Value sv, wv;
      if (sel[li] == kInv || wid[li] == kInv ||
          !ar_.constant(sel[li], &sv) || !ar_.constant(wid[li], &wv))
        throw Abort{c.callee + " with a symbolic selector or width"};
      std::int64_t wdt = wv.as_i();
      if (wdt <= 0 || wdt > opt_.warp_size || (wdt & (wdt - 1)) != 0)
        throw Abort{"__shfl width must be a power of two in [1,32]", true};
      int lane = l % opt_.warp_size;
      int warp_base = l - lane;
      int group_base = lane / static_cast<int>(wdt) * static_cast<int>(wdt);
      std::int64_t s = sv.as_i();
      int src_lane;
      if (c.callee == "__shfl") {
        src_lane = group_base + static_cast<int>(s % wdt);
      } else if (c.callee == "__shfl_up") {
        int cand = lane - static_cast<int>(s);
        src_lane = cand < group_base ? lane : cand;
      } else if (c.callee == "__shfl_down") {
        int cand = lane + static_cast<int>(s);
        src_lane = cand >= group_base + static_cast<int>(wdt) ? lane : cand;
      } else {  // __shfl_xor
        int cand = group_base + ((lane - group_base) ^ static_cast<int>(s));
        src_lane = cand < group_base + static_cast<int>(wdt) ? cand : lane;
      }
      int src_tid = warp_base + src_lane;
      if (src_lane < 0 || src_lane >= opt_.warp_size || src_tid >= nlanes_)
        src_tid = l;  // hardware-style out-of-range recovery
      std::uint32_t id = var[static_cast<std::size_t>(src_tid)];
      if (id == kInv)
        throw Abort{c.callee + " reads an uninitialized source value"};
      out[li] = id;
    }
    return out;
  }

  // ---------------- memory ----------------
  void note_write(CellMeta& meta, IdVec& cells, std::size_t i, int lane,
                  std::uint32_t vid, bool is_global, const std::string& name) {
    if (div_depth_ > 0) {
      // Guarded store: fold the branch predicates into the stored value
      // (select(pred, new, old)). Globals are not snapshot-merged, so
      // the wrapped value is immediately final; shared cells would need
      // a cross-lane merge and stay banned.
      if (!is_global)
        throw Abort{"store to shared '" + name +
                    "' under a symbolically divergent branch"};
      std::uint32_t old = cells[i];
      if (old == kInv)
        throw Abort{"guarded store to uninitialized '" + name + "[" +
                    std::to_string(i) + "]'"};
      auto li = static_cast<std::size_t>(lane);
      for (auto it = preds_.rbegin(); it != preds_.rend(); ++it) {
        std::uint32_t p = (*it)[li];
        if (p != kInv) vid = ar_.select(p, vid, old);
      }
    }
    int warp = warp_of(lane);
    if (is_global) {
      if (meta.wblock >= 0 && meta.wblock != blk_ && cells[i] != vid)
        throw Abort{"cross-block write conflict on '" + name + "[" +
                    std::to_string(i) + "]'"};
      meta.wblock = blk_;
    }
    if (meta.wseq == seq_ && cells[i] != vid)
      throw Abort{"conflicting same-statement stores to '" + name + "[" +
                  std::to_string(i) + "]'"};
    if (meta.wepoch == epoch_ && meta.wwarp != warp && cells[i] != vid)
      race("cross-warp write/write race on '" + name + "[" +
           std::to_string(i) + "]'");
    if (meta.repoch == epoch_ &&
        (meta.rwarp == -2 || (meta.rwarp >= 0 && meta.rwarp != warp)))
      race("cross-warp read/write race on '" + name + "[" + std::to_string(i) +
           "]'");
    meta.wepoch = epoch_;
    meta.wwarp = warp;
    meta.wseq = seq_;
    cells[i] = vid;
  }

  std::uint32_t note_read(CellMeta& meta, const IdVec& cells, std::size_t i,
                          int lane, bool is_global, const std::string& name) {
    int warp = warp_of(lane);
    if (is_global && meta.wblock >= 0 && meta.wblock != blk_)
      throw Abort{"cross-block read of '" + name + "[" + std::to_string(i) +
                  "]'"};
    if (meta.wepoch == epoch_ && meta.wwarp != warp)
      race("cross-warp write/read race on '" + name + "[" + std::to_string(i) +
           "]'");
    if (meta.repoch == epoch_) {
      if (meta.rwarp != warp && meta.rwarp != -2) meta.rwarp = -2;
    } else {
      meta.repoch = epoch_;
      meta.rwarp = warp;
    }
    std::uint32_t id = cells[i];
    if (id == kInv && shfl_depth_ == 0)
      throw Abort{"read of uninitialized '" + name + "[" + std::to_string(i) +
                  "]'"};
    return id;
  }

  std::uint32_t gather_read(std::vector<CellMeta>& meta, const IdVec& cells,
                            std::size_t lo, std::size_t n, std::uint32_t idx,
                            int lane, bool is_global, const std::string& name,
                            ScalarType type) {
    if (static_cast<std::int64_t>(n) > opt_.max_gather_cells)
      throw Abort{"load from '" + name + "' at a symbolic index over " +
                  std::to_string(n) + " cells exceeds the gather limit"};
    std::vector<std::uint32_t> snap(n);
    for (std::size_t i = 0; i < n; ++i) {
      std::uint32_t id = note_read(meta[lo + i], cells, lo + i, lane,
                                   is_global, name);
      if (id == kInv)
        throw Abort{"load from '" + name +
                    "' at a symbolic index over uninitialized cells"};
      snap[i] = id;
    }
    return ar_.gather(idx, snap, type);
  }

  /// Load (store == nullptr) or store through an ArrayIndex expression.
  IdVec access(const ir::ArrayIndex& ai, const Mask& m, const IdVec* store) {
    if (ai.base->kind() != ir::ExprKind::kVarRef)
      throw Abort{"array base must be a variable", true};
    const std::string& name = static_cast<const ir::VarRef&>(*ai.base).name;
    Var& v = lookup(name, "array access");
    ++seq_;
    IdVec out(static_cast<std::size_t>(nlanes_), kInv);

    if (v.is_buffer) {
      if (ai.indices.size() != 1)
        throw Abort{"pointer '" + name + "' requires exactly one index", true};
      IdVec idx = eval(*ai.indices[0], m);
      GBuf& g = globals_[static_cast<std::size_t>(v.arg)];
      auto elems = static_cast<std::int64_t>(g.cells.size());
      for (int l = 0; l < nlanes_; ++l) {
        auto li = static_cast<std::size_t>(l);
        if (!m[li]) continue;
        if (idx[li] == kInv) continue;  // shfl-broadened lane, unused
        Value iv;
        if (ar_.constant(idx[li], &iv)) {
          std::int64_t i = iv.as_i();
          if (i < 0 || i >= elems)
            throw Abort{"out-of-bounds access to '" + name + "[" +
                            std::to_string(i) + "]' (size " +
                            std::to_string(elems) + ")",
                        true};
          auto ci = static_cast<std::size_t>(i);
          if (store) {
            std::uint32_t vid = coerce_id((*store)[li], g.type);
            note_write(g.meta[ci], g.cells, ci, l, vid, true, name);
          } else {
            out[li] = note_read(g.meta[ci], g.cells, ci, l, true, name);
          }
        } else {
          if (store)
            throw Abort{"store to '" + name + "' at a symbolic index"};
          out[li] = gather_read(g.meta, g.cells, 0, g.cells.size(), idx[li],
                                l, true, name, g.type);
        }
      }
      return out;
    }

    if (!v.type.is_array()) throw Abort{"'" + name + "' is not an array", true};
    const auto& dims = v.type.array_dims;
    if (ai.indices.size() != dims.size())
      throw Abort{"array '" + name + "' has " + std::to_string(dims.size()) +
                      " dims, indexed with " +
                      std::to_string(ai.indices.size()),
                  true};
    // Flatten, keeping per-dim bounds checks when indices are concrete.
    std::vector<IdVec> idxs;
    idxs.reserve(dims.size());
    for (const auto& ie : ai.indices) idxs.push_back(eval(*ie, m));
    std::int64_t elems = v.type.element_count();
    auto scalar = v.type.scalar;
    for (int l = 0; l < nlanes_; ++l) {
      auto li = static_cast<std::size_t>(l);
      if (!m[li]) continue;
      std::int64_t flat = 0;
      std::uint32_t sym_flat = kInv;
      bool symbolic = false, dead = false;
      for (std::size_t d = 0; d < dims.size(); ++d) {
        std::uint32_t id = idxs[d][li];
        if (id == kInv) {
          dead = true;  // shfl-broadened lane with no value; skip quietly
          break;
        }
        Value iv;
        if (!symbolic && ar_.constant(id, &iv)) {
          std::int64_t i = iv.as_i();
          if (i < 0 || i >= dims[d])
            throw Abort{"index " + std::to_string(i) + " out of bounds for '" +
                            name + "' dim of " + std::to_string(dims[d]),
                        true};
          flat = flat * dims[d] + i;
        } else {
          // Switch to symbolic flattening from here on.
          if (!symbolic) {
            sym_flat = ar_.cint(flat);
            symbolic = true;
          }
          sym_flat = ar_.bin(BinOp::kAdd,
                             ar_.bin(BinOp::kMul, sym_flat, ar_.cint(dims[d])),
                             id);
        }
      }
      if (dead) continue;
      bool shared = v.block_scoped;
      std::size_t base = shared ? 0
                                : static_cast<std::size_t>(l) *
                                      static_cast<std::size_t>(elems);
      if (!symbolic) {
        auto ci = base + static_cast<std::size_t>(flat);
        if (store) {
          std::uint32_t vid = coerce_id((*store)[li], scalar);
          if (shared) {
            note_write(v.meta[ci], v.cells, ci, l, vid, false, name);
          } else {
            v.cells[ci] = vid;  // per-lane storage: divergence-safe
          }
        } else if (shared) {
          out[li] = note_read(v.meta[ci], v.cells, ci, l, false, name);
        } else {
          std::uint32_t id = v.cells[ci];
          if (id == kInv && shfl_depth_ == 0)
            throw Abort{"read of uninitialized array element '" + name + "[" +
                        std::to_string(flat) + "]'"};
          out[li] = id;
        }
      } else {
        if (store)
          throw Abort{"store to '" + name + "' at a symbolic index"};
        if (shared) {
          out[li] = gather_read(v.meta, v.cells, 0,
                                static_cast<std::size_t>(elems), sym_flat, l,
                                false, name, scalar);
        } else {
          if (elems > opt_.max_gather_cells)
            throw Abort{"symbolic-index load over " + std::to_string(elems) +
                        " cells exceeds the gather limit"};
          std::vector<std::uint32_t> snap(static_cast<std::size_t>(elems));
          for (std::int64_t e = 0; e < elems; ++e) {
            std::uint32_t id = v.cells[base + static_cast<std::size_t>(e)];
            if (id == kInv)
              throw Abort{"load from '" + name +
                          "' at a symbolic index over uninitialized cells"};
            snap[static_cast<std::size_t>(e)] = id;
          }
          out[li] = ar_.gather(sym_flat, snap, scalar);
        }
      }
    }
    return out;
  }

  std::uint32_t coerce_id(std::uint32_t id, ScalarType to) {
    if (id == kInv) throw Abort{"store of an uninitialized value"};
    return ar_.cast(to, id);
  }

  void barrier(const Mask& m) {
    if (div_depth_ > 0)
      throw Abort{"__syncthreads under a symbolically divergent branch"};
    // Warp-granular arrival, matching the interpreter's note_barrier: a
    // warp arrives when any lane reaches the barrier; a warp with live
    // lanes that never arrives deadlocks on real hardware (and is a
    // deterministic kBarrierDivergence hazard in the sanitizer).
    for (int lo = 0; lo < nlanes_; lo += opt_.warp_size) {
      int hi = std::min(lo + opt_.warp_size, nlanes_);
      bool active = false, live = false;
      for (int l = lo; l < hi; ++l) {
        auto li = static_cast<std::size_t>(l);
        active = active || m[li] != 0;
        live = live || !returned_[li];
      }
      if (live && !active)
        throw Abort{"__syncthreads not reached by a live warp", true};
    }
    ++epoch_;
  }

  // ---------------- statements ----------------
  void exec_block(const ir::Block& b, Mask m) {
    for (const auto& s : b.stmts) {
      bool alive = false;
      for (int l = 0; l < nlanes_; ++l) {
        auto li = static_cast<std::size_t>(l);
        if (returned_[li]) m[li] = 0;
        alive = alive || m[li];
      }
      if (!alive) return;
      exec_stmt(*s, m);
    }
  }

  void exec_stmt(const ir::Stmt& s, const Mask& m) {
    count_step();
    switch (s.kind()) {
      case ir::StmtKind::kBlock:
        exec_block(static_cast<const ir::Block&>(s), m);
        return;
      case ir::StmtKind::kDecl:
        exec_decl(static_cast<const ir::DeclStmt&>(s), m);
        return;
      case ir::StmtKind::kAssign:
        exec_assign(static_cast<const ir::AssignStmt&>(s), m);
        return;
      case ir::StmtKind::kIf:
        exec_if(static_cast<const ir::IfStmt&>(s), m);
        return;
      case ir::StmtKind::kFor:
        exec_for(static_cast<const ir::ForStmt&>(s), m);
        return;
      case ir::StmtKind::kWhile:
        exec_while(static_cast<const ir::WhileStmt&>(s), m);
        return;
      case ir::StmtKind::kExpr:
        (void)eval(*static_cast<const ir::ExprStmt&>(s).expr, m);
        return;
      case ir::StmtKind::kReturn:
        if (div_depth_ > 0)
          throw Abort{"return under a symbolically divergent branch"};
        for (int l = 0; l < nlanes_; ++l)
          if (m[static_cast<std::size_t>(l)])
            returned_[static_cast<std::size_t>(l)] = 1;
        return;
      case ir::StmtKind::kBreak:
      case ir::StmtKind::kContinue:
        // The interpreter rejects these too (structured masks only).
        throw Abort{"break/continue are not supported", true};
    }
  }

  void exec_decl(const ir::DeclStmt& d, const Mask& m) {
    Var v;
    v.type = d.type;
    v.live = true;
    if (d.type.is_array()) {
      std::int64_t elems = d.type.element_count();
      v.block_scoped = d.type.space == ir::AddrSpace::kShared;
      std::size_t ncells = v.block_scoped
                               ? static_cast<std::size_t>(elems)
                               : static_cast<std::size_t>(elems) *
                                     static_cast<std::size_t>(nlanes_);
      v.cells.assign(ncells, kInv);
      if (v.block_scoped) v.meta.assign(static_cast<std::size_t>(elems), CellMeta{});
      if (!d.init_list.empty()) {
        if (static_cast<std::int64_t>(d.init_list.size()) > elems)
          throw Abort{"too many initializers for '" + d.name + "'", true};
        // Brace initializers are constant contents; lane-0 semantics, and
        // the tail zero-fills like C.
        Mask one(static_cast<std::size_t>(nlanes_), 0);
        one[0] = 1;
        for (std::int64_t e = 0; e < elems; ++e) {
          std::uint32_t id;
          if (e < static_cast<std::int64_t>(d.init_list.size())) {
            IdVec x = eval(*d.init_list[static_cast<std::size_t>(e)], one);
            id = coerce_id(x[0], d.type.scalar);
          } else {
            id = d.type.scalar == ScalarType::kFloat ? ar_.cfloat(0.0)
                                                     : ar_.cint(0);
          }
          if (v.block_scoped) {
            v.cells[static_cast<std::size_t>(e)] = id;
          } else {
            for (int l = 0; l < nlanes_; ++l)
              v.cells[static_cast<std::size_t>(l) *
                          static_cast<std::size_t>(elems) +
                      static_cast<std::size_t>(e)] = id;
          }
        }
      } else if (d.init) {
        throw Abort{"array initializers are not supported", true};
      }
    } else {
      v.scalar.assign(static_cast<std::size_t>(nlanes_), kInv);
      if (d.init) {
        IdVec x = eval(*d.init, m);
        for (int l = 0; l < nlanes_; ++l) {
          auto li = static_cast<std::size_t>(l);
          if (m[li]) v.scalar[li] = coerce_id(x[li], d.type.scalar);
        }
      }
    }
    vars_[d.name] = std::move(v);
  }

  void store_var(const std::string& name, const Mask& m, const IdVec& val) {
    Var& v = lookup(name, "assignment");
    if (v.is_buffer || v.type.is_array() || v.uniform)
      throw Abort{"cannot assign to '" + name + "'", true};
    for (int l = 0; l < nlanes_; ++l) {
      auto li = static_cast<std::size_t>(l);
      if (m[li]) v.scalar[li] = coerce_id(val[li], v.type.scalar);
    }
  }

  void exec_assign(const ir::AssignStmt& a, const Mask& m) {
    IdVec rhs = eval(*a.rhs, m);
    if (a.op != ir::AssignOp::kAssign) {
      IdVec old = eval(*a.lhs, m);
      BinOp op = a.op == ir::AssignOp::kAdd   ? BinOp::kAdd
                 : a.op == ir::AssignOp::kSub ? BinOp::kSub
                 : a.op == ir::AssignOp::kMul ? BinOp::kMul
                                              : BinOp::kDiv;
      for (int l = 0; l < nlanes_; ++l) {
        auto li = static_cast<std::size_t>(l);
        if (!m[li]) continue;
        if (old[li] == kInv || rhs[li] == kInv)
          throw Abort{"compound assignment reads an uninitialized value"};
        rhs[li] = ar_.bin(op, old[li], rhs[li]);
      }
    }
    if (a.lhs->kind() == ir::ExprKind::kVarRef) {
      store_var(static_cast<const ir::VarRef&>(*a.lhs).name, m, rhs);
      return;
    }
    if (a.lhs->kind() == ir::ExprKind::kArrayIndex) {
      (void)access(static_cast<const ir::ArrayIndex&>(*a.lhs), m, &rhs);
      return;
    }
    throw Abort{"invalid assignment target", true};
  }

  void exec_if(const ir::IfStmt& s, const Mask& m) {
    IdVec c = eval(*s.cond, m);
    Mask tm(static_cast<std::size_t>(nlanes_), 0);
    Mask fm(static_cast<std::size_t>(nlanes_), 0);
    Mask sm(static_cast<std::size_t>(nlanes_), 0);
    bool has_sym = false;
    for (int l = 0; l < nlanes_; ++l) {
      auto li = static_cast<std::size_t>(l);
      if (!m[li]) continue;
      if (c[li] == kInv) throw Abort{"branch on an uninitialized value"};
      Value cv;
      if (ar_.constant(c[li], &cv)) {
        (cv.truthy() ? tm : fm)[li] = 1;
      } else {
        sm[li] = 1;
        has_sym = true;
      }
    }
    if (!has_sym) {
      if (any(tm)) exec_block(*s.then_body, tm);
      if (s.else_body && any(fm)) exec_block(*s.else_body, fm);
      return;
    }
    // Symbolically divergent branch: run both sides from the same
    // pre-state, then merge per-lane register values with select nodes.
    // Side effects that could leak across lanes (shared/global stores,
    // barriers, shfl, return) abort inside either side.
    auto pre = vars_;
    Mask tsm = tm, fsm = fm;
    IdVec tpred(static_cast<std::size_t>(nlanes_), kInv);
    IdVec fpred(static_cast<std::size_t>(nlanes_), kInv);
    for (int l = 0; l < nlanes_; ++l) {
      auto li = static_cast<std::size_t>(l);
      if (!sm[li]) continue;
      tsm[li] = fsm[li] = 1;
      tpred[li] = c[li];
      fpred[li] = ar_.un(UnOp::kLNot, c[li]);
    }
    ++div_depth_;
    preds_.push_back(std::move(tpred));
    exec_block(*s.then_body, tsm);
    preds_.back() = std::move(fpred);
    auto then_vars = std::move(vars_);
    vars_ = std::move(pre);
    if (s.else_body) exec_block(*s.else_body, fsm);
    preds_.pop_back();
    --div_depth_;
    merge_vars(then_vars, c, tm, sm);
  }

  void merge_vars(std::unordered_map<std::string, Var>& then_vars,
                  const IdVec& cond, const Mask& tm, const Mask& sm) {
    auto merge_id = [&](std::size_t lane, std::uint32_t tv,
                        std::uint32_t ev) -> std::uint32_t {
      if (tm[lane]) return tv;
      if (!sm[lane]) return ev;
      if (tv == ev) return tv;
      if (tv == kInv || ev == kInv) return kInv;
      return ar_.select(cond[lane], tv, ev);
    };
    for (auto& [name, tv] : then_vars) {
      auto it = vars_.find(name);
      if (it == vars_.end()) {
        vars_.emplace(name, std::move(tv));  // declared only in then-branch
        continue;
      }
      Var& ev = it->second;
      if (ev.block_scoped || ev.is_buffer) continue;  // stores were banned
      if (tv.scalar.size() == ev.scalar.size())
        for (std::size_t i = 0; i < ev.scalar.size(); ++i)
          ev.scalar[i] = merge_id(i, tv.scalar[i], ev.scalar[i]);
      if (!ev.block_scoped && tv.cells.size() == ev.cells.size() &&
          !ev.cells.empty()) {
        auto elems = static_cast<std::size_t>(ev.type.element_count());
        for (std::size_t i = 0; i < ev.cells.size(); ++i)
          ev.cells[i] = merge_id(i / elems, tv.cells[i], ev.cells[i]);
      }
    }
  }

  void exec_for(const ir::ForStmt& f, const Mask& m) {
    if (f.init) exec_stmt(*f.init, m);
    Mask active = m;
    while (true) {
      count_step();  // back-edge, like the interpreter's watchdog
      if (f.cond) {
        IdVec c = eval(*f.cond, active);
        prune(active, c, "loop bound");
      }
      if (!any(active)) break;
      exec_block(*f.body, active);
      for (int l = 0; l < nlanes_; ++l)
        if (returned_[static_cast<std::size_t>(l)])
          active[static_cast<std::size_t>(l)] = 0;
      if (!any(active)) break;
      if (f.inc) exec_stmt(*f.inc, active);
    }
  }

  void exec_while(const ir::WhileStmt& w, const Mask& m) {
    Mask active = m;
    while (true) {
      count_step();
      IdVec c = eval(*w.cond, active);
      prune(active, c, "while condition");
      if (!any(active)) break;
      exec_block(*w.body, active);
      for (int l = 0; l < nlanes_; ++l)
        if (returned_[static_cast<std::size_t>(l)])
          active[static_cast<std::size_t>(l)] = 0;
    }
  }

  /// Loop conditions must fold to constants per lane (trip counts are part
  /// of the proof obligation, not the symbolic environment).
  void prune(Mask& active, const IdVec& c, const char* what) {
    for (int l = 0; l < nlanes_; ++l) {
      auto li = static_cast<std::size_t>(l);
      if (!active[li]) continue;
      if (c[li] == kInv)
        throw Abort{std::string(what) + " reads an uninitialized value"};
      Value cv;
      if (!ar_.constant(c[li], &cv))
        throw Abort{std::string("symbolic ") + what +
                    " (data-dependent trip count)"};
      if (!cv.truthy()) active[li] = 0;
    }
  }

  // ---------------- state ----------------
  const ir::Kernel& kernel_;
  Dim3 grid_, block_;
  const std::vector<SymArg>& args_;
  SymArena& ar_;
  SymExecOptions opt_;
  int nlanes_ = 0;
  std::vector<GBuf> globals_;
  std::vector<SymRace> races_;
  std::int64_t steps_ = 0;

  std::unordered_map<std::string, Var> vars_;
  std::unordered_map<std::string, IdVec> geom_;
  Mask returned_;
  std::int64_t epoch_ = 0;
  std::int64_t seq_ = 0;
  std::int64_t blk_ = 0;
  int div_depth_ = 0;
  /// One per-lane branch-predicate vector per symbolic-divergence level
  /// (kInv = lane is unconditional at that level).
  std::vector<IdVec> preds_;
  int shfl_depth_ = 0;
};

}  // namespace

SymExecResult sym_execute(const ir::Kernel& kernel, Dim3 grid, Dim3 block,
                          const std::vector<SymArg>& args, SymArena& arena,
                          const SymExecOptions& opt) {
  return Exec(kernel, grid, block, args, arena, opt).run();
}

// ---------------------------------------------------------------------------
// SymEvaluator
// ---------------------------------------------------------------------------

bool SymEvaluator::eval(std::uint32_t id, Value* out) {
  if (id == SymArena::kInvalid) return false;
  auto it = memo_.find(id);
  if (it != memo_.end()) {
    *out = it->second;
    return true;
  }
  const SymNode& n = arena_.node(id);
  Value r;
  try {
    switch (n.kind) {
      case SymKind::kConstInt: r = Value::of_int(n.ival); break;
      case SymKind::kConstFloat: r = Value::of_float(n.fval); break;
      case SymKind::kInput:
        if (n.type != ir::ScalarType::kFloat) return false;  // never built
        r = Value::of_float(sym_float_input(seed_, n.param, n.ival));
        break;
      case SymKind::kBin: {
        Value a, b;
        if (!eval(n.kids[0], &a) || !eval(n.kids[1], &b)) return false;
        r = eval_bin_value(static_cast<ir::BinOp>(n.op), a, b);
        break;
      }
      case SymKind::kUnary: {
        Value a;
        if (!eval(n.kids[0], &a)) return false;
        r = eval_un_value(static_cast<ir::UnOp>(n.op), a);
        break;
      }
      case SymKind::kCall: {
        std::vector<Value> xs(n.kids.size());
        for (std::size_t i = 0; i < n.kids.size(); ++i)
          if (!eval(n.kids[i], &xs[i])) return false;
        r = eval_call_value(static_cast<SymFn>(n.op), xs);
        break;
      }
      case SymKind::kCast: {
        Value a;
        if (!eval(n.kids[0], &a)) return false;
        r = coerce_value(a, static_cast<ir::ScalarType>(n.op));
        break;
      }
      case SymKind::kSelect: {
        Value c, a, b;
        if (!eval(n.kids[0], &c) || !eval(n.kids[1], &a) ||
            !eval(n.kids[2], &b))
          return false;
        r = c.truthy() ? a : b;
        break;
      }
      case SymKind::kGather: {
        Value iv;
        if (!eval(n.kids[0], &iv)) return false;
        std::int64_t i = iv.as_i();
        auto ncells = static_cast<std::int64_t>(n.kids.size()) - 1;
        if (i < 0 || i >= ncells) return false;
        if (!eval(n.kids[static_cast<std::size_t>(1 + i)], &r)) return false;
        break;
      }
      case SymKind::kNary: {
        if (!eval(n.kids[0], &r)) return false;
        auto op = static_cast<SymNaryOp>(n.op);
        for (std::size_t i = 1; i < n.kids.size(); ++i) {
          Value x;
          if (!eval(n.kids[i], &x)) return false;
          r = combine_nary(op, r, x);
        }
        break;
      }
    }
  } catch (const SymFault&) {
    return false;
  }
  memo_.emplace(id, r);
  *out = r;
  return true;
}

}  // namespace cudanp::sim
