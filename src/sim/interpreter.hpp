// Block-lockstep vector interpreter for the kernel IR.
//
// Execution model
// ---------------
// A thread block executes as one wide vector of lanes (threads) with a
// per-lane active mask; every statement completes for all active lanes
// before the next statement begins. This is a strictly stronger
// synchronization than real hardware provides, so it is functionally
// correct for every race-free kernel that synchronizes through
// __syncthreads() (all paper benchmarks, and everything CUDA-NP emits).
//
// Engines
// -------
// Two engines implement this model over the same per-block core
// (sim/exec_core.hpp), so their outputs, cost-model stats, watchdog step
// counts and sanitizer hazard streams are bit-identical:
//   - kAst: the original recursive AST walk (reference engine);
//   - kVm:  bound kernels are lowered once per launch into a flat
//           register bytecode (sim/bytecode.hpp) executed by a dispatch
//           loop over SoA lane state (sim/vm.cpp) — the fast path.
//   - kCheck: runs both and cross-diffs outputs, stats and hazards
//           (testing tool; see docs/performance.md).
// Select with Options::engine or the CUDANP_ENGINE environment variable
// (ast | vm | check); the default is the VM, with a transparent per-launch
// fallback to the AST walk for constructs the lowering declines.
//
// Cost model hooks
// ----------------
// While executing, the interpreter charges per-warp costs (a warp is
// charged for an operation iff >= 1 of its lanes is active under the
// current mask), so SIMD divergence — including the slave-imbalance
// effects of intra-warp NP (paper Sec. 3.4, Figs. 11/12) — is measured,
// not asserted. Global accesses run through the coalescing model, shared
// accesses through the bank-conflict model, local-memory accesses through
// a per-block slice of the L1. See sim/cost_model.hpp for how the counts
// become seconds.
//
// Supported builtins
// ------------------
//   __syncthreads()
//   __shfl(var, srcLane, width), __shfl_up/_down(var, delta, width),
//   __shfl_xor(var, mask, width)           [sm_30+; paper Sec. 2.1]
//   sqrtf, fabsf, expf, logf, sinf, cosf, powf, rsqrtf, floorf,
//   min, max, fminf, fmaxf, abs
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "ir/kernel.hpp"
#include "sim/cost_model.hpp"
#include "sim/launch.hpp"
#include "sim/memory.hpp"
#include "support/diagnostics.hpp"

namespace cudanp::sim {

class SanitizerEngine;
class FaultInjector;

namespace bytecode {
struct Program;
}

/// Thrown when a block exceeds its interpreted-statement budget. Derives
/// from SimError so every existing containment site (sanitized runs, the
/// autotuner, Runner) already catches it; callers that care about the
/// watchdog specifically catch this first.
class WatchdogError : public SimError {
 public:
  WatchdogError(const std::string& what, SourceLoc loc, std::int64_t steps)
      : SimError(what), loc_(loc), steps_(steps) {}
  [[nodiscard]] const SourceLoc& loc() const { return loc_; }
  [[nodiscard]] std::int64_t steps() const { return steps_; }

 private:
  SourceLoc loc_;
  std::int64_t steps_;
};

/// Which executor runs the blocks of a launch.
enum class Engine : std::uint8_t {
  kAuto,   ///< Options::engine unset: CUDANP_ENGINE env var, else kVm.
  kAst,    ///< Recursive AST walk (reference engine).
  kVm,     ///< Bytecode VM (fast path; per-launch AST fallback).
  kCheck,  ///< Run both, diff outputs/stats/hazards, throw on mismatch.
};

[[nodiscard]] const char* to_string(Engine e);
[[nodiscard]] std::optional<Engine> engine_from_string(std::string_view s);
/// Non-auto request wins; else the CUDANP_ENGINE environment variable
/// (ast | vm | check) if set and valid; else the VM.
[[nodiscard]] Engine resolve_engine(Engine requested);

/// Cost-model knobs: how executed operations turn into cycles. Purely
/// observational — never changes results or hazard streams.
struct TimingOptions {
  CostWeights weights;
  /// Memory-level parallelism a single warp extracts from unrolled loop
  /// bodies: exposed per-statement latency is divided by this when the
  /// warp critical path is assembled.
  double warp_mlp = 4.0;
};

/// Execution-bound knobs: when a runaway block is cut off. Composable so
/// the serve layer can carry one value object from deadline math to the
/// interpreter instead of re-deriving resolve_max_steps overload
/// semantics at each call site.
struct ExecutionLimits {
  /// Safety valve for runaway loops.
  std::int64_t max_loop_iterations = 1 << 26;
  /// Watchdog: per-thread-block budget of interpreted statements (loop
  /// back-edges count as one statement, so even empty-body spins trip).
  /// 0 = auto: the CUDANP_MAX_STEPS environment variable if set, else
  /// Interpreter::kDefaultMaxStepsPerBlock. Negative = unlimited. A trip
  /// raises WatchdogError (unsanitized) or a kWatchdogTrip hazard
  /// (sanitized) carrying the tripping source location and per-loop
  /// back-edge counts, and cooperatively cancels the rest of the launch;
  /// results stay bit-identical at every job count. See
  /// docs/robustness.md.
  std::int64_t max_steps_per_block = 0;
  /// Deadline clamp: when positive, the resolved watchdog budget is
  /// additionally capped at this many steps. This is how the serve layer
  /// maps a job's remaining wall-clock deadline onto the per-block
  /// watchdog (deadline_ms * steps_per_ms -> steps): a hanging kernel
  /// trips at its deadline instead of consuming the full default budget.
  std::int64_t deadline_steps = 0;

  /// The resolved per-block step budget: max_steps_per_block semantics
  /// above, then clamped to deadline_steps when that is positive.
  [[nodiscard]] std::int64_t resolve() const;
};

class Interpreter {
 public:
  struct Options {
    /// Cost-model weights and warp MLP (observational only).
    TimingOptions timing;
    /// Watchdog / loop / deadline bounds.
    ExecutionLimits limits;
    /// Which engine executes blocks; kAuto defers to CUDANP_ENGINE.
    Engine engine = Engine::kAuto;
    /// When non-null, chaos-testing hooks fire during interpretation:
    /// injected SimErrors at the Nth statement and block stalls that the
    /// watchdog must catch. Production runs leave this null.
    const FaultInjector* fault = nullptr;
    /// When non-null, execution is instrumented for shared-memory races,
    /// barrier divergence, uninitialized reads and shfl hazards, and a
    /// SimError inside one block is downgraded to a kSimFault report so
    /// the rest of the grid still runs. See sim/sanitizer.hpp.
    SanitizerEngine* sanitizer = nullptr;
    /// Host threads simulating blocks concurrently. 0 = auto: the
    /// CUDANP_JOBS environment variable if set, else hardware
    /// concurrency. Results are bit-identical at every job count: blocks
    /// are independent and per-block stats / hazard reports are merged
    /// in block-index order (see docs/performance.md).
    int jobs = 0;
  };

  Interpreter(const DeviceSpec& spec, DeviceMemory& mem, Options opt)
      : spec_(spec), mem_(mem), opt_(opt) {}
  Interpreter(const DeviceSpec& spec, DeviceMemory& mem)
      : Interpreter(spec, mem, Options()) {}

  /// Executes `kernel` over the whole grid and returns aggregate stats.
  /// `resident_blocks_per_smx` (from the occupancy calculator) sizes the
  /// per-block L1 slice; pass 1 if unknown.
  [[nodiscard]] KernelStats run(const ir::Kernel& kernel,
                                const LaunchConfig& cfg,
                                int resident_blocks_per_smx = 1);

  [[nodiscard]] const DeviceSpec& spec() const { return spec_; }

  /// Default watchdog budget when neither ExecutionLimits nor
  /// CUDANP_MAX_STEPS chooses one: generous (matches the per-loop
  /// iteration valve) but finite.
  static constexpr std::int64_t kDefaultMaxStepsPerBlock = 1 << 26;

  /// Resolves a step-budget request: explicit > 0 wins, else the
  /// CUDANP_MAX_STEPS environment variable, else the default; negative
  /// disables the watchdog (returns INT64_MAX).
  [[nodiscard]] static std::int64_t resolve_max_steps(std::int64_t requested);

  /// Deadline-aware resolution: like resolve_max_steps(requested), then
  /// clamped to `deadline_budget` steps when that is positive.
  /// ExecutionLimits::resolve() packages the same semantics as a value
  /// object; prefer it in new code.
  [[nodiscard]] static std::int64_t resolve_max_steps(
      std::int64_t requested, std::int64_t deadline_budget);

 private:
  [[nodiscard]] KernelStats run_engine(const ir::Kernel& kernel,
                                       const LaunchConfig& cfg,
                                       int resident_blocks_per_smx,
                                       Engine engine);
  /// kCheck: runs the AST engine against scratch sanitizer/memory state,
  /// rewinds device memory, runs the VM for real, and throws a SimError
  /// describing the first divergence in outputs, stats, hazard streams
  /// or raised errors.
  [[nodiscard]] KernelStats run_checked(const ir::Kernel& kernel,
                                        const LaunchConfig& cfg,
                                        int resident_blocks_per_smx);

  const DeviceSpec& spec_;
  DeviceMemory& mem_;
  Options opt_;
};

/// Structured launch validation, run before any interpretation: rejects
/// zero/negative grid or block dimensions, block sizes over the device
/// limit, and shared-memory requests over the per-SMX capacity with a
/// SimError whose message starts with "invalid launch:". Called by
/// Interpreter::run and run_and_time; np::Runner's sanitized paths
/// surface the failure as a kSimFault report via record_launch_fault.
/// `shared_mem_per_block` may be 0 when resources are unknown.
void validate_launch(const DeviceSpec& spec, const LaunchConfig& cfg,
                     std::int64_t shared_mem_per_block = 0);

/// Convenience wrapper: occupancy + interpretation + timing in one call.
struct RunResult {
  KernelStats stats;
  Occupancy occupancy;
  TimingBreakdown timing;
};

[[nodiscard]] RunResult run_and_time(const DeviceSpec& spec,
                                     DeviceMemory& mem,
                                     const ir::Kernel& kernel,
                                     const LaunchConfig& cfg,
                                     const ResourceUsage& resources,
                                     Interpreter::Options opt = {});

}  // namespace cudanp::sim
