#include "sim/exec_core.hpp"

#include <algorithm>
#include <cmath>
#include <string>
#include <sstream>

#include "sim/fault.hpp"

namespace cudanp::sim::exec {

using namespace cudanp::ir;

BlockCore::BlockCore(const DeviceSpec& spec, DeviceMemory& mem,
                     const Interpreter::Options& opt,
                     const BoundKernel& bound, const LaunchConfig& cfg,
                     Dim3 block_idx, int resident_blocks, BlockSanitizer* san,
                     std::int64_t flat_block, std::int64_t max_steps)
    : spec_(spec),
      mem_(mem),
      opt_(opt),
      bound_(bound),
      kernel_(*bound.kernel),
      cfg_(cfg),
      block_idx_(block_idx),
      flat_block_(flat_block),
      max_steps_(max_steps),
      nlanes_(static_cast<int>(cfg.block.count())),
      nwarps_((nlanes_ + spec.warp_size - 1) / spec.warp_size),
      l1_(spec.l1_cache_bytes / std::max(resident_blocks, 1),
          spec.l1_line_bytes) {
  warp_issue_.assign(static_cast<std::size_t>(nwarps_), 0.0);
  warp_latency_.assign(static_cast<std::size_t>(nwarps_), 0.0);
  warp_pending_.assign(static_cast<std::size_t>(nwarps_), 0.0);
  returned_.assign(static_cast<std::size_t>(nlanes_), 0);
  san_ = san;
  if (san_) {
    warp_gen_.assign(static_cast<std::size_t>(nwarps_), 0);
    smem_shadow_.reserve(static_cast<std::size_t>(bound.shared_words_bound));
  }
  frame_.resize(bound.num_slots());
  init_geometry();
  bind_params();
}

void BlockCore::init_geometry() {
  for (int g = 0; g < kGeomCount; ++g)
    geom_[g].assign(static_cast<std::size_t>(nlanes_), Value::of_int(0));
  for (int l = 0; l < nlanes_; ++l) {
    auto li = static_cast<std::size_t>(l);
    geom_[kGeomThreadIdxX][li] = Value::of_int(l % cfg_.block.x);
    geom_[kGeomThreadIdxY][li] =
        Value::of_int((l / cfg_.block.x) % cfg_.block.y);
    geom_[kGeomThreadIdxZ][li] =
        Value::of_int(l / (cfg_.block.x * cfg_.block.y));
  }
  auto fill = [&](int g, int v) {
    geom_[g].assign(static_cast<std::size_t>(nlanes_), Value::of_int(v));
  };
  fill(kGeomBlockIdxX, block_idx_.x);
  fill(kGeomBlockIdxY, block_idx_.y);
  fill(kGeomBlockIdxZ, block_idx_.z);
  fill(kGeomBlockDimX, cfg_.block.x);
  fill(kGeomBlockDimY, cfg_.block.y);
  fill(kGeomBlockDimZ, cfg_.block.z);
  fill(kGeomGridDimX, cfg_.grid.x);
  fill(kGeomGridDimY, cfg_.grid.y);
  fill(kGeomGridDimZ, cfg_.grid.z);
}

void BlockCore::bind_params() {
  if (cfg_.args.size() != kernel_.params.size())
    throw SimError("kernel '" + kernel_.name + "' expects " +
                   std::to_string(kernel_.params.size()) + " args, got " +
                   std::to_string(cfg_.args.size()));
  for (std::size_t i = 0; i < kernel_.params.size(); ++i) {
    const Param& p = kernel_.params[i];
    Slot& slot = frame_[i];  // binder assigns params slots 0..n-1
    slot.type = p.type;
    if (p.type.is_pointer) {
      const auto* buf = std::get_if<BufferId>(&cfg_.args[i]);
      if (!buf)
        throw SimError("arg " + std::to_string(i) + " ('" + p.name +
                       "') must be a buffer");
      slot.is_buffer_param = true;
      slot.buffer = *buf;
    } else {
      const auto* v = std::get_if<Value>(&cfg_.args[i]);
      if (!v)
        throw SimError("arg " + std::to_string(i) + " ('" + p.name +
                       "') must be a scalar");
      Value coerced = p.type.scalar == ScalarType::kFloat
                          ? Value::of_float(v->as_f()).to_f32()
                          : Value::of_int(v->as_i());
      slot.is_uniform_param = true;
      slot.data.assign(1, coerced);  // uniform scalar, one copy
    }
    slot.live = true;
  }
}

KernelStats BlockCore::collect_stats() const {
  KernelStats s;
  s.blocks = 1;
  s.warps = nwarps_;
  s.global_transactions = global_transactions_;
  s.local_transactions = local_transactions_;
  s.local_l1_misses = local_l1_misses_;
  s.dram_transactions = dram_transactions_;
  s.smem_accesses = smem_accesses_;
  s.smem_replays = smem_replays_;
  s.shfl_ops = shfl_ops_;
  s.sync_ops = sync_ops_;
  s.divergent_branches = divergent_branches_;
  double crit = 0;
  for (int w = 0; w < nwarps_; ++w) {
    s.issue_slots += warp_issue_[static_cast<std::size_t>(w)];
    crit = std::max(crit, warp_issue_[static_cast<std::size_t>(w)] +
                              warp_latency_[static_cast<std::size_t>(w)] /
                                  opt_.timing.warp_mlp);
  }
  s.crit_path_cycles = crit;
  return s;
}

void BlockCore::count_step(const SourceLoc& loc) {
  ++steps_;
  if (opt_.fault) opt_.fault->maybe_fault(flat_block_, steps_, loc);
  if (steps_ > max_steps_) throw make_watchdog_error(loc);
}

WatchdogError BlockCore::make_watchdog_error(const SourceLoc& loc) const {
  std::ostringstream os;
  os << "watchdog: block (" << block_idx_.x << "," << block_idx_.y << ","
     << block_idx_.z << ") exceeded its step budget of " << max_steps_
     << " interpreted statements at " << loc.str();
  if (!loop_stack_.empty()) {
    os << "; loop back-edges (innermost first):";
    std::size_t shown = 0;
    for (auto it = loop_stack_.rbegin(); it != loop_stack_.rend() && shown < 4;
         ++it, ++shown)
      os << " " << it->first.str() << " x" << it->second;
  }
  return WatchdogError(os.str(), loc, steps_);
}

void BlockCore::stall() {
  if (max_steps_ == std::numeric_limits<std::int64_t>::max())
    throw SimError(
        "injected stall: watchdog disabled, aborting instead of hanging");
  for (;;) count_step(kernel_.body->loc());
}

// ---------------- memory access paths ----------------

void BlockCore::charge_global(const DeviceBuffer& buf, LaneView idx,
                              const Mask& mask) {
  std::int64_t esize = Type::scalar_size_bytes(buf.type());
  for_each_active_warp(mask, [&](int w, int lo, int hi) {
    std::uint64_t addrs[32];
    std::uint8_t act[32];
    int n = hi - lo;
    for (int l = lo; l < hi; ++l) {
      act[l - lo] = mask[static_cast<std::size_t>(l)];
      addrs[l - lo] =
          buf.base_addr() +
          static_cast<std::uint64_t>(idx.at(static_cast<std::size_t>(l))
                                         .as_i()) *
              static_cast<std::uint64_t>(esize);
    }
    if (buf.is_constant()) {
      // Constant cache: distinct words serialize, identical broadcast.
      int replays = smem_replays({addrs, static_cast<std::size_t>(n)},
                                 {act, static_cast<std::size_t>(n)}, 1);
      smem_accesses_ += replays;  // books constant traffic with smem
      warp_issue_[static_cast<std::size_t>(w)] +=
          opt_.timing.weights.mem_issue * replays;
      charge_latency(w, spec_.smem_latency_cycles);
      return;
    }
    int trans = coalesced_transactions({addrs, static_cast<std::size_t>(n)},
                                       {act, static_cast<std::size_t>(n)}, 32);
    global_transactions_ += trans;
    dram_transactions_ += trans;
    warp_issue_[static_cast<std::size_t>(w)] += opt_.timing.weights.mem_issue;
    charge_latency(w, spec_.dram_latency_cycles);
  });
}

void BlockCore::charge_shared(const Slot& slot, const Value* flat_idx,
                              const Mask& mask) {
  for_each_active_warp(mask, [&](int w, int lo, int hi) {
    std::uint64_t words[32];
    std::uint8_t act[32];
    int n = hi - lo;
    for (int l = lo; l < hi; ++l) {
      act[l - lo] = mask[static_cast<std::size_t>(l)];
      words[l - lo] =
          slot.base_word +
          static_cast<std::uint64_t>(flat_idx[static_cast<std::size_t>(l)]
                                         .as_i());
    }
    int replays = smem_replays({words, static_cast<std::size_t>(n)},
                               {act, static_cast<std::size_t>(n)},
                               static_cast<int>(spec_.shared_mem_banks));
    smem_accesses_ += replays;
    smem_replays_ += replays - 1;
    warp_issue_[static_cast<std::size_t>(w)] += opt_.timing.weights.mem_issue;
    charge_latency(w, spec_.smem_latency_cycles + (replays - 1));
  });
}

void BlockCore::charge_local(const Slot& slot, const Value* elem_idx,
                             const Mask& mask) {
  // Local memory is interleaved per thread: addr(lane, e) =
  // local_base + (e * nlanes + lane) * 4, matching the CUDA ABI layout
  // that makes uniform-index accesses coalesced.
  for_each_active_warp(mask, [&](int w, int lo, int hi) {
    std::uint64_t addrs[32];
    std::uint8_t act[32];
    int n = hi - lo;
    for (int l = lo; l < hi; ++l) {
      act[l - lo] = mask[static_cast<std::size_t>(l)];
      std::uint64_t e = static_cast<std::uint64_t>(
          elem_idx[static_cast<std::size_t>(l)].as_i());
      addrs[l - lo] = kLocalSpaceBase +
                      (slot.base_word +
                       e * static_cast<std::uint64_t>(nlanes_) +
                       static_cast<std::uint64_t>(l)) *
                          4;
    }
    // Unique 128B lines of this access probe the L1.
    std::uint64_t lines[32];
    int nlines = 0;
    for (int k = 0; k < n; ++k) {
      if (!act[k]) continue;
      std::uint64_t line = addrs[k] / 128;
      bool seen = false;
      for (int j = 0; j < nlines; ++j)
        if (lines[j] == line) {
          seen = true;
          break;
        }
      if (!seen) lines[nlines++] = line;
    }
    bool all_hit = true;
    for (int j = 0; j < nlines; ++j) {
      if (!l1_.access(lines[j] * 128)) {
        all_hit = false;
        dram_transactions_ += 4;  // 128B line refill in 32B transactions
        ++local_l1_misses_;
      }
    }
    local_transactions_ += nlines;
    warp_issue_[static_cast<std::size_t>(w)] += opt_.timing.weights.mem_issue;
    charge_latency(w, all_hit ? spec_.l1_latency_cycles
                              : spec_.dram_latency_cycles);
  });
}

void BlockCore::buffer_access(Slot& slot, const std::string& name,
                              LaneView idx, const Mask& mask,
                              const LaneView* store, Value* out,
                              SourceLoc loc) {
  DeviceBuffer& buf = mem_.buffer(slot.buffer);
  charge_global(buf, idx, mask);
  std::vector<std::uint8_t>* bsh =
      san_ ? san_->engine->buffer_shadow(slot.buffer) : nullptr;
  for (int l = 0; l < nlanes_; ++l) {
    if (!mask[static_cast<std::size_t>(l)]) continue;
    std::size_t i =
        static_cast<std::size_t>(idx.at(static_cast<std::size_t>(l)).as_i());
    if (store) {
      buf.store(i, coerce(store->at(static_cast<std::size_t>(l)),
                          buf.type()));
      if (bsh && i < bsh->size()) (*bsh)[i] = 1;
    } else {
      if (bsh && shfl_arg_depth_ == 0 && i < bsh->size() && !(*bsh)[i])
        san_report(HazardKind::kUninitRead, loc, l,
                   "read of uninitialized global buffer '" + name + "[" +
                       std::to_string(i) + "]'");
      out[static_cast<std::size_t>(l)] = buf.load(i);
    }
  }
}

void BlockCore::shared_access(Slot& slot, const std::string& name,
                              const Value* flat, const Mask& mask,
                              const LaneView* store, Value* out,
                              SourceLoc loc) {
  charge_shared(slot, flat, mask);
  if (san_) ++access_seq_;
  for (int l = 0; l < nlanes_; ++l) {
    if (!mask[static_cast<std::size_t>(l)]) continue;
    std::size_t i =
        static_cast<std::size_t>(flat[static_cast<std::size_t>(l)].as_i());
    if (store) {
      Value val =
          coerce(store->at(static_cast<std::size_t>(l)), slot.type.scalar);
      if (san_) note_shared_write(slot, name, i, l, val, loc);
      slot.data[i] = val;
    } else {
      if (san_) note_shared_read(slot, name, i, l, loc);
      out[static_cast<std::size_t>(l)] = slot.data[i];
    }
  }
}

void BlockCore::local_access(Slot& slot, const std::string& name,
                             const Value* flat, const Mask& mask,
                             const LaneView* store, Value* out,
                             SourceLoc loc) {
  if (slot.type.space == AddrSpace::kLocal) {
    charge_local(slot, flat, mask);
  } else if (slot.type.space == AddrSpace::kConstant) {
    // Constant cache broadcasts one word per cycle: lanes reading
    // distinct words serialize (paper Sec. 3.4's intra-warp hazard).
    for_each_active_warp(mask, [&](int w, int lo, int hi) {
      std::uint64_t words[32];
      std::uint8_t act[32];
      int n = hi - lo;
      for (int l = lo; l < hi; ++l) {
        act[l - lo] = mask[static_cast<std::size_t>(l)];
        words[l - lo] = static_cast<std::uint64_t>(
            flat[static_cast<std::size_t>(l)].as_i());
      }
      int replays = smem_replays({words, static_cast<std::size_t>(n)},
                                 {act, static_cast<std::size_t>(n)}, 1);
      warp_issue_[static_cast<std::size_t>(w)] +=
          opt_.timing.weights.mem_issue * replays;
      charge_latency(w, spec_.smem_latency_cycles);
    });
  } else {
    charge_issue(mask, opt_.timing.weights.alu);  // register-file access
  }
  std::int64_t elems = slot.type.element_count();
  for (int l = 0; l < nlanes_; ++l) {
    if (!mask[static_cast<std::size_t>(l)]) continue;
    std::size_t i = static_cast<std::size_t>(
        static_cast<std::int64_t>(l) * elems +
        flat[static_cast<std::size_t>(l)].as_i());
    if (store) {
      slot.data[i] =
          coerce(store->at(static_cast<std::size_t>(l)), slot.type.scalar);
      if (!slot.shadow.empty()) slot.shadow[i] = 1;
    } else {
      if (san_ && shfl_arg_depth_ == 0 && !slot.shadow.empty() &&
          !slot.shadow[i])
        san_report(HazardKind::kUninitRead, loc, l,
                   "read of uninitialized array element '" + name + "[" +
                       std::to_string(flat[static_cast<std::size_t>(l)]
                                          .as_i()) +
                       "]'");
      out[static_cast<std::size_t>(l)] = slot.data[i];
    }
  }
}

void BlockCore::flatten_dim(Value* flat, LaneView idx, std::int64_t dim,
                            bool first, const Mask& mask, SourceLoc loc) {
  for (int l = 0; l < nlanes_; ++l) {
    if (!mask[static_cast<std::size_t>(l)]) continue;
    std::int64_t i = idx.at(static_cast<std::size_t>(l)).as_i();
    if (i < 0 || i >= dim)
      throw SimError("index " + std::to_string(i) + " out of bounds [0," +
                     std::to_string(dim) + ") for array at " + loc.str());
    auto& f = flat[static_cast<std::size_t>(l)];
    f = Value::of_int(first ? i : f.as_i() * dim + i);
  }
}

// ---------------- scalar variable paths ----------------

Slot& BlockCore::var_read_check(std::int32_t slot_id, const std::string& name,
                                const Mask& mask, SourceLoc loc) {
  Slot& slot = slot_at(slot_id, name, loc);
  if (slot.is_buffer_param)
    throw SimError("pointer '" + name +
                   "' used as a value (only indexing is supported)");
  if (slot.type.is_array())
    throw SimError("array '" + name + "' used without an index");
  if (slot.is_uniform_param) return slot;
  if (san_ && shfl_arg_depth_ == 0 && !slot.shadow.empty()) {
    for (int l = 0; l < nlanes_; ++l) {
      if (!mask[static_cast<std::size_t>(l)]) continue;
      if (!slot.shadow[static_cast<std::size_t>(l)]) {
        san_report(HazardKind::kUninitRead, loc, l,
                   "read of uninitialized variable '" + name + "'");
        break;  // one report per access; dedupe absorbs repeats
      }
    }
  }
  return slot;
}

void BlockCore::store_var(std::int32_t slot_id, const std::string& name,
                          const Mask& mask, LaneView val, SourceLoc loc) {
  Slot& slot = slot_at(slot_id, name, loc);
  if (slot.is_buffer_param || slot.type.is_array())
    throw SimError("cannot assign to '" + name + "' without an index");
  if (slot.is_uniform_param)
    throw SimError("cannot assign to kernel parameter '" + name +
                   "' (treated as uniform)");
  charge_issue(mask, opt_.timing.weights.alu);
  const ScalarType to = slot.type.scalar;
  Value* data = slot.data.data();
  std::uint8_t* shadow = slot.shadow.empty() ? nullptr : slot.shadow.data();
  for (int l = 0; l < nlanes_; ++l)
    if (mask[static_cast<std::size_t>(l)]) {
      data[static_cast<std::size_t>(l)] =
          coerce(val.at(static_cast<std::size_t>(l)), to);
      if (shadow) shadow[static_cast<std::size_t>(l)] = 1;
    }
}

void BlockCore::decl_scalar_init(Slot& slot, ScalarType to, const Mask& mask,
                                 LaneView val) {
  charge_issue(mask, opt_.timing.weights.alu);
  Value* data = slot.data.data();
  std::uint8_t* shadow = slot.shadow.empty() ? nullptr : slot.shadow.data();
  for (int l = 0; l < nlanes_; ++l)
    if (mask[static_cast<std::size_t>(l)]) {
      data[static_cast<std::size_t>(l)] =
          coerce(val.at(static_cast<std::size_t>(l)), to);
      if (shadow) shadow[static_cast<std::size_t>(l)] = 1;
    }
}

void BlockCore::decl_fill(Slot& slot, const Type& type, std::size_t e,
                          Value raw) {
  Value val = coerce(raw, type.scalar);
  if (type.space == AddrSpace::kShared) {
    slot.data[e] = val;
  } else {
    std::int64_t elems = type.element_count();
    for (int l = 0; l < nlanes_; ++l)
      slot.data[static_cast<std::size_t>(l) * static_cast<std::size_t>(elems) +
                e] = val;
  }
}

void BlockCore::decl_shadow_all(Slot& slot, const Type& type) {
  if (!san_) return;
  if (type.space == AddrSpace::kShared) {
    for (std::int64_t e = 0; e < type.element_count(); ++e)
      smem_shadow_[slot.base_word + static_cast<std::uint64_t>(e)].init = true;
  } else {
    std::fill(slot.shadow.begin(), slot.shadow.end(), 1);
  }
}

// ---------------- operators ----------------

void BlockCore::do_binop(BinOp op, LaneView a, LaneView b, const Mask& mask,
                         Value* out, SourceLoc loc) {
  double w = opt_.timing.weights.alu;
  if (op == BinOp::kDiv || op == BinOp::kMod) {
    // Int div/mod and float div are multi-cycle.
    w = opt_.timing.weights.idiv_imod;
    if (op == BinOp::kDiv && (a.at(first_active(mask)).is_float() ||
                              b.at(first_active(mask)).is_float()))
      w = opt_.timing.weights.fdiv_sqrt_transcendental;
  }
  charge_issue(mask, w);
  dispatch_binop(op, a, b, mask, out, loc);
}

void BlockCore::do_compound(BinOp op, LaneView oldv, LaneView rhs,
                            const Mask& mask, Value* out, SourceLoc loc) {
  charge_issue(mask, opt_.timing.weights.alu);
  dispatch_binop(op, oldv, rhs, mask, out, loc);
}

void BlockCore::do_unop(UnOp op, LaneView a, const Mask& mask, Value* out) {
  charge_issue(mask, opt_.timing.weights.alu);
  for (int l = 0; l < nlanes_; ++l) {
    if (!mask[static_cast<std::size_t>(l)]) continue;
    Value x = a.at(static_cast<std::size_t>(l));
    if (op == UnOp::kNeg)
      x = x.is_float() ? Value::of_float(-x.f) : Value::of_int(-x.i);
    else
      x = Value::of_int(x.truthy() ? 0 : 1);
    out[static_cast<std::size_t>(l)] = x;
  }
}

void BlockCore::do_cast(ScalarType to, LaneView a, const Mask& mask,
                        Value* out) {
  charge_issue(mask, opt_.timing.weights.alu);
  for (int l = 0; l < nlanes_; ++l) {
    if (!mask[static_cast<std::size_t>(l)]) continue;
    out[static_cast<std::size_t>(l)] =
        coerce(a.at(static_cast<std::size_t>(l)), to);
  }
}

void BlockCore::do_select(LaneView c, LaneView a, LaneView b,
                          const Mask& mask, Value* out) {
  charge_issue(mask, opt_.timing.weights.alu);
  for (int l = 0; l < nlanes_; ++l) {
    if (!mask[static_cast<std::size_t>(l)]) continue;
    out[static_cast<std::size_t>(l)] =
        c.at(static_cast<std::size_t>(l)).truthy()
            ? a.at(static_cast<std::size_t>(l))
            : b.at(static_cast<std::size_t>(l));
  }
}

void BlockCore::do_unary_math(double (*fn)(double), bool sfu, LaneView a,
                              const Mask& mask, Value* out) {
  charge_issue(mask, sfu ? opt_.timing.weights.fdiv_sqrt_transcendental
                         : opt_.timing.weights.alu);
  for (int l = 0; l < nlanes_; ++l) {
    if (!mask[static_cast<std::size_t>(l)]) continue;
    out[static_cast<std::size_t>(l)] =
        Value::of_float(fn(a.at(static_cast<std::size_t>(l)).as_f()))
            .to_f32();
  }
}

void BlockCore::do_abs(LaneView a, const Mask& mask, Value* out) {
  charge_issue(mask, opt_.timing.weights.alu);
  for (int l = 0; l < nlanes_; ++l) {
    if (!mask[static_cast<std::size_t>(l)]) continue;
    Value x = a.at(static_cast<std::size_t>(l));
    out[static_cast<std::size_t>(l)] = x.is_float()
                                           ? Value::of_float(std::fabs(x.f))
                                           : Value::of_int(std::abs(x.i));
  }
}

void BlockCore::do_binmath(Builtin b, LaneView x, LaneView y,
                           const Mask& mask, Value* out) {
  charge_issue(mask, b == Builtin::kPowf
                         ? 2 * opt_.timing.weights.fdiv_sqrt_transcendental
                         : opt_.timing.weights.alu);
  const bool is_min = b == Builtin::kMin || b == Builtin::kFminf;
  const bool force_float = b == Builtin::kFminf || b == Builtin::kFmaxf;
  for (int l = 0; l < nlanes_; ++l) {
    if (!mask[static_cast<std::size_t>(l)]) continue;
    Value xv = x.at(static_cast<std::size_t>(l));
    Value yv = y.at(static_cast<std::size_t>(l));
    if (b == Builtin::kPowf) {
      out[static_cast<std::size_t>(l)] =
          Value::of_float(std::pow(xv.as_f(), yv.as_f())).to_f32();
    } else if (is_min) {
      if (xv.is_float() || yv.is_float() || force_float)
        out[static_cast<std::size_t>(l)] =
            Value::of_float(std::min(xv.as_f(), yv.as_f())).to_f32();
      else
        out[static_cast<std::size_t>(l)] = Value::of_int(std::min(xv.i, yv.i));
    } else {
      if (xv.is_float() || yv.is_float() || force_float)
        out[static_cast<std::size_t>(l)] =
            Value::of_float(std::max(xv.as_f(), yv.as_f())).to_f32();
      else
        out[static_cast<std::size_t>(l)] = Value::of_int(std::max(xv.i, yv.i));
    }
  }
}

// ---------------- builtins with shared semantics ----------------

void BlockCore::do_sync(const Mask& mask, SourceLoc loc) {
  ++sync_ops_;
  charge_issue(mask, opt_.timing.weights.sync);
  for_each_active_warp(mask, [&](int w, int, int) {
    charge_latency(w, spec_.sync_latency_cycles);
  });
  if (san_) note_barrier(loc, mask);
}

void BlockCore::make_broad_mask(const Mask& mask, Mask& broad) {
  broad.assign(static_cast<std::size_t>(nlanes_), 0);
  for_each_active_warp(mask, [&](int, int lo, int hi) {
    for (int l = lo; l < hi; ++l) broad[static_cast<std::size_t>(l)] = 1;
  });
}

void BlockCore::do_shfl(Builtin b, const std::string& callee, LaneView var,
                        LaneView sel, LaneView width, const Mask& mask,
                        Value* out, SourceLoc loc, std::int32_t var_slot,
                        const std::string* var_name) {
  ++shfl_ops_;
  charge_issue(mask, opt_.timing.weights.shfl);
  for_each_active_warp(mask, [&](int w, int, int) {
    charge_latency(w, spec_.shfl_latency_cycles);
  });
  std::vector<int> src_of;
  if (san_) src_of.assign(static_cast<std::size_t>(nlanes_), -1);
  for (int l = 0; l < nlanes_; ++l) {
    if (!mask[static_cast<std::size_t>(l)]) continue;
    int lane = l % spec_.warp_size;
    int warp_base = l - lane;
    std::int64_t wdt = width.at(static_cast<std::size_t>(l)).as_i();
    if (wdt <= 0 || wdt > spec_.warp_size || (wdt & (wdt - 1)) != 0)
      throw SimError("__shfl width must be a power of two in [1,32]");
    int group_base = lane / static_cast<int>(wdt) * static_cast<int>(wdt);
    std::int64_t s = sel.at(static_cast<std::size_t>(l)).as_i();
    int src_lane;
    if (b == Builtin::kShfl) {
      src_lane = group_base + static_cast<int>(s % wdt);
    } else if (b == Builtin::kShflUp) {
      int cand = lane - static_cast<int>(s);
      src_lane = cand < group_base ? lane : cand;
    } else if (b == Builtin::kShflDown) {
      int cand = lane + static_cast<int>(s);
      src_lane = cand >= group_base + static_cast<int>(wdt) ? lane : cand;
    } else {  // __shfl_xor
      int cand = group_base + ((lane - group_base) ^ static_cast<int>(s));
      src_lane = cand < group_base + static_cast<int>(wdt) ? cand : lane;
    }
    int src_tid = warp_base + src_lane;
    // A negative selector (e.g. __shfl(v, -1, 32)) or a delta that
    // escapes the warp produces an out-of-range source lane: undefined
    // on hardware. Recover with the caller's own value, as the hardware
    // effectively does for out-of-range segments.
    if (src_lane < 0 || src_lane >= spec_.warp_size) {
      if (san_)
        san_report(HazardKind::kShflHazard, loc, l,
                   callee + " source lane " + std::to_string(src_lane) +
                       " is outside [0," + std::to_string(spec_.warp_size) +
                       ")");
      src_tid = l;
    } else if (src_tid >= nlanes_) {
      if (san_)
        san_report(HazardKind::kShflHazard, loc, l,
                   callee + " source lane " + std::to_string(src_lane) +
                       " lies beyond the thread block");
      src_tid = l;
    } else if (san_ && !mask[static_cast<std::size_t>(src_tid)]) {
      san_report(HazardKind::kShflHazard, loc, l,
                 callee + " reads from inactive source lane " +
                     std::to_string(src_lane) +
                     " (undefined on real hardware)");
    }
    if (san_) src_of[static_cast<std::size_t>(l)] = src_tid;
    out[static_cast<std::size_t>(l)] =
        var.at(static_cast<std::size_t>(src_tid));
  }
  if (san_ && var_name) {
    // Post-hoc init check on the lanes actually read as sources. The
    // bound slot id replaces the old vars_.find string lookup.
    const Slot* vs =
        var_slot >= 0 && frame_[static_cast<std::size_t>(var_slot)].live
            ? &frame_[static_cast<std::size_t>(var_slot)]
            : nullptr;
    if (vs && vs->type.is_scalar() && !vs->is_uniform_param &&
        !vs->shadow.empty()) {
      for (int l = 0; l < nlanes_; ++l) {
        int s = src_of[static_cast<std::size_t>(l)];
        if (s >= 0 && !vs->shadow[static_cast<std::size_t>(s)]) {
          san_report(HazardKind::kUninitRead, loc, l,
                     callee + " reads uninitialized variable '" + *var_name +
                         "' from lane " +
                         std::to_string(s % spec_.warp_size));
          break;
        }
      }
    }
  }
}

// ---------------- sanitizer hooks ----------------

bool BlockCore::portable_races() const {
  return san_->engine->options().race_mode ==
         SanitizerEngine::RaceMode::kPortable;
}

void BlockCore::san_report(HazardKind kind, SourceLoc loc, int lane,
                           std::string msg) {
  HazardReport r;
  r.kind = kind;
  r.kernel = kernel_.name;
  r.block = block_idx_;
  r.thread = lane;
  r.loc = loc;
  r.message = std::move(msg);
  // Collected locally; Interpreter::run replays block streams through
  // the engine in block-index order (dedupe / limit applied there).
  san_->reports.push_back(std::move(r));
}

void BlockCore::note_shared_write(const Slot& slot, const std::string& name,
                                  std::size_t idx, int lane, Value val,
                                  SourceLoc loc) {
  SharedShadow& sh = smem_shadow_[slot.base_word + idx];
  int w = lane / spec_.warp_size;
  std::uint64_t gen = warp_gen_[static_cast<std::size_t>(w)];
  if (sh.write_access == access_seq_ && sh.writer_lane != lane &&
      !value_eq(sh.written, val)) {
    san_report(HazardKind::kSharedRace, loc, lane,
               "write-write race on shared '" + name + "[" +
                   std::to_string(idx) + "]': lanes " +
                   std::to_string(sh.writer_lane) + " and " +
                   std::to_string(lane) +
                   " store different values in the same instruction");
  } else if (portable_races() && sh.writer_warp >= 0 && sh.write_gen == gen &&
             sh.writer_warp != w && !value_eq(sh.written, val)) {
    san_report(HazardKind::kSharedRace, loc, lane,
               "write-write race on shared '" + name + "[" +
                   std::to_string(idx) + "]' with warp " +
                   std::to_string(sh.writer_warp) + "'s store at " +
                   sh.write_loc.str() + " in the same barrier interval");
  }
  if (portable_races() && sh.reader_warp != -1 && sh.read_gen == gen &&
      sh.reader_warp != w) {
    san_report(HazardKind::kSharedRace, loc, lane,
               "read-write race on shared '" + name + "[" +
                   std::to_string(idx) +
                   "]': store overlaps another warp's read in the same "
                   "barrier interval");
  }
  sh.init = true;
  sh.write_access = access_seq_;
  sh.writer_lane = lane;
  sh.written = val;
  sh.write_gen = gen;
  sh.writer_warp = w;
  sh.write_loc = loc;
}

void BlockCore::note_shared_read(const Slot& slot, const std::string& name,
                                 std::size_t idx, int lane, SourceLoc loc) {
  SharedShadow& sh = smem_shadow_[slot.base_word + idx];
  int w = lane / spec_.warp_size;
  std::uint64_t gen = warp_gen_[static_cast<std::size_t>(w)];
  if (!sh.init && shfl_arg_depth_ == 0)
    san_report(HazardKind::kUninitRead, loc, lane,
               "read of uninitialized shared memory '" + name + "[" +
                   std::to_string(idx) + "]'");
  if (portable_races() && sh.writer_warp >= 0 && sh.write_gen == gen &&
      sh.writer_warp != w) {
    san_report(HazardKind::kSharedRace, loc, lane,
               "read-write race on shared '" + name + "[" +
                   std::to_string(idx) + "]': word written by warp " +
                   std::to_string(sh.writer_warp) + " at " +
                   sh.write_loc.str() + " in the same barrier interval");
  }
  if (sh.reader_warp == -1 || sh.read_gen != gen)
    sh.reader_warp = w;
  else if (sh.reader_warp != w)
    sh.reader_warp = -2;
  sh.read_gen = gen;
}

void BlockCore::note_barrier(SourceLoc loc, const Mask& mask) {
  int arrived = 0;
  int absent_warp = -1;
  int absent_lane = -1;
  for (int w = 0; w < nwarps_; ++w) {
    int lo = w * spec_.warp_size;
    int hi = std::min(lo + spec_.warp_size, nlanes_);
    bool active = false;
    int live = -1;
    for (int l = lo; l < hi; ++l) {
      if (mask[static_cast<std::size_t>(l)]) active = true;
      if (!returned_[static_cast<std::size_t>(l)] && live < 0) live = l;
    }
    if (active) {
      ++warp_gen_[static_cast<std::size_t>(w)];
      ++arrived;
    } else if (live >= 0 && absent_warp < 0) {
      absent_warp = w;
      absent_lane = live;
    }
  }
  if (arrived > 0 && absent_warp >= 0)
    san_report(HazardKind::kBarrierDivergence, loc, absent_lane,
               "__syncthreads reached by " + std::to_string(arrived) + " of " +
                   std::to_string(nwarps_) + " warps; warp " +
                   std::to_string(absent_warp) +
                   " has live threads that never arrive (deadlock on "
                   "real hardware)");
}

// ---------------- variable helpers ----------------

Slot& BlockCore::slot_at(std::int32_t s, const std::string& name,
                         SourceLoc loc) {
  if (s >= 0) {
    Slot& slot = frame_[static_cast<std::size_t>(s)];
    if (slot.live) return slot;
  } else if (s == kSlotUnbound) {
    throw SimError("internal: unbound reference to '" + name +
                   "' (kernel AST modified after slot binding)");
  }
  throw SimError("use of undeclared variable '" + name + "' at " + loc.str());
}

Slot& BlockCore::declare(const DeclStmt& d) {
  if (d.sim_slot < 0)
    throw SimError("internal: unbound declaration of '" + d.name +
                   "' (kernel AST modified after slot binding)");
  Slot& slot = frame_[static_cast<std::size_t>(d.sim_slot)];
  if (!slot.live) {
    slot.type = d.type;
    if (d.type.space == AddrSpace::kShared) {
      slot.data.assign(static_cast<std::size_t>(d.type.element_count()),
                       Value{});
      slot.base_word = smem_word_cursor_;
      smem_word_cursor_ += static_cast<std::uint64_t>(d.type.element_count());
    } else if (d.type.is_array()) {  // local / register / constant array
      slot.data.assign(
          static_cast<std::size_t>(d.type.element_count() * nlanes_), Value{});
      slot.base_word = local_word_cursor_;
      local_word_cursor_ += static_cast<std::uint64_t>(d.type.element_count());
    } else {  // register scalar
      slot.data.assign(static_cast<std::size_t>(nlanes_), Value{});
    }
    if (san_ && d.type.space != AddrSpace::kShared)
      slot.shadow.assign(slot.data.size(), 0);
    slot.live = true;
  }
  return slot;
}

void BlockCore::binop_fail(const char* prefix, SourceLoc loc) {
  throw SimError(std::string(prefix) + loc.str());
}

template <BinOp kOp>
void BlockCore::binop_lanes(LaneView a, LaneView b, const Mask& mask,
                            Value* out, SourceLoc loc) {
  // Split on operand shape so the lane loop reads vectors directly
  // instead of re-testing LaneView's vec-or-splat branch every lane.
  const std::uint8_t* m = mask.data();
  const std::size_t n = static_cast<std::size_t>(nlanes_);
  if (a.vec && b.vec) {
    const Value* av = a.vec;
    const Value* bv = b.vec;
    for (std::size_t l = 0; l < n; ++l)
      if (m[l]) out[l] = apply_binop<kOp>(av[l], bv[l], loc);
  } else if (a.vec) {
    const Value* av = a.vec;
    const Value bs = b.splat;
    for (std::size_t l = 0; l < n; ++l)
      if (m[l]) out[l] = apply_binop<kOp>(av[l], bs, loc);
  } else if (b.vec) {
    const Value as = a.splat;
    const Value* bv = b.vec;
    for (std::size_t l = 0; l < n; ++l)
      if (m[l]) out[l] = apply_binop<kOp>(as, bv[l], loc);
  } else {
    // Uniform operands give a uniform result — evaluate once, but only
    // if some lane is active, so an error (e.g. division by zero) still
    // fires exactly when the per-lane loop would have fired it.
    bool done = false;
    Value r{};
    for (std::size_t l = 0; l < n; ++l) {
      if (!m[l]) continue;
      if (!done) {
        r = apply_binop<kOp>(a.splat, b.splat, loc);
        done = true;
      }
      out[l] = r;
    }
  }
}

void BlockCore::dispatch_binop(BinOp op, LaneView a, LaneView b,
                               const Mask& mask, Value* out, SourceLoc loc) {
  switch (op) {
    case BinOp::kAdd: return binop_lanes<BinOp::kAdd>(a, b, mask, out, loc);
    case BinOp::kSub: return binop_lanes<BinOp::kSub>(a, b, mask, out, loc);
    case BinOp::kMul: return binop_lanes<BinOp::kMul>(a, b, mask, out, loc);
    case BinOp::kDiv: return binop_lanes<BinOp::kDiv>(a, b, mask, out, loc);
    case BinOp::kMod: return binop_lanes<BinOp::kMod>(a, b, mask, out, loc);
    case BinOp::kLt: return binop_lanes<BinOp::kLt>(a, b, mask, out, loc);
    case BinOp::kLe: return binop_lanes<BinOp::kLe>(a, b, mask, out, loc);
    case BinOp::kGt: return binop_lanes<BinOp::kGt>(a, b, mask, out, loc);
    case BinOp::kGe: return binop_lanes<BinOp::kGe>(a, b, mask, out, loc);
    case BinOp::kEq: return binop_lanes<BinOp::kEq>(a, b, mask, out, loc);
    case BinOp::kNe: return binop_lanes<BinOp::kNe>(a, b, mask, out, loc);
    case BinOp::kLAnd: return binop_lanes<BinOp::kLAnd>(a, b, mask, out, loc);
    case BinOp::kLOr: return binop_lanes<BinOp::kLOr>(a, b, mask, out, loc);
    case BinOp::kBitAnd:
      return binop_lanes<BinOp::kBitAnd>(a, b, mask, out, loc);
    case BinOp::kBitOr:
      return binop_lanes<BinOp::kBitOr>(a, b, mask, out, loc);
    case BinOp::kBitXor:
      return binop_lanes<BinOp::kBitXor>(a, b, mask, out, loc);
    case BinOp::kShl: return binop_lanes<BinOp::kShl>(a, b, mask, out, loc);
    case BinOp::kShr: return binop_lanes<BinOp::kShr>(a, b, mask, out, loc);
  }
  throw SimError("unreachable binop");
}

}  // namespace cudanp::sim::exec
