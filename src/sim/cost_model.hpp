// Cost accounting and the analytic timing model.
//
// While interpreting a kernel the simulator counts, per thread block:
//   - warp-instruction issue slots (a warp is charged for a statement iff
//     at least one of its lanes is active -> SIMD divergence cost falls
//     out naturally, including the intra-warp-NP imbalance of Sec. 3.4),
//   - global-memory transactions after coalescing,
//   - shared-memory accesses and bank-conflict replays,
//   - local-memory transactions and L1 misses,
//   - shfl / syncthreads operations,
// plus the *critical path* of the slowest warp (issue cycles + dependent
// memory latency), which bounds performance when few warps are resident.
//
// TimingModel then combines these with the occupancy calculator's resident
// block count using a Hong&Kim-flavoured max(throughput, latency) model:
//
//   T_wave  = max(T_issue, T_dram, T_smem, T_crit)
//   T_issue = issue slots of all resident blocks / SMX issue width
//   T_dram  = DRAM bytes of all resident blocks / per-SMX bandwidth
//   T_smem  = shared accesses (incl. replays) / smem throughput
//   T_crit  = slowest single warp's dependency chain (independent of how
//             many warps are resident -> the latency-bound regime that
//             CUDA-NP's extra TLP escapes)
//   total   = #waves * T_wave / clock
//
// This reproduces the paper's mechanisms: raising TLP shrinks the number
// of waves and hides latency until a throughput bound is hit (Fig. 11's
// "more slaves stops helping" effect), divergence and broken coalescing
// raise T_issue/T_dram (inter- vs intra-warp trade-offs), and local-memory
// pressure raises T_dram via L1 misses (Fig. 15).
#pragma once

#include <cstdint>

#include "sim/device.hpp"

namespace cudanp::sim {

/// Instruction-class weights in issue slots (fractions model units with
/// lower throughput than the schedulers).
struct CostWeights {
  double alu = 1.0;
  double fmul_fadd = 1.0;
  double fdiv_sqrt_transcendental = 8.0;  // SFU-bound
  double idiv_imod = 10.0;
  double mem_issue = 1.0;  // issue cost of any LD/ST on top of transactions
  double shfl = 1.0;
  double sync = 2.0;
};

/// Aggregated execution statistics for one kernel launch (summed over all
/// blocks; `per_block_*` fields are averages used by the wave model).
struct KernelStats {
  std::int64_t blocks = 0;
  std::int64_t warps = 0;

  // Totals across the launch.
  double issue_slots = 0;             // weighted warp-instructions
  std::int64_t dram_transactions = 0;  // 32B each (global + local misses)
  std::int64_t global_transactions = 0;
  std::int64_t local_transactions = 0;  // local-memory warp accesses
  std::int64_t local_l1_misses = 0;
  std::int64_t smem_accesses = 0;  // incl. replays
  std::int64_t smem_replays = 0;   // conflict overhead only
  std::int64_t shfl_ops = 0;
  std::int64_t sync_ops = 0;
  std::int64_t divergent_branches = 0;

  // Critical path of the slowest warp of an average block, in cycles.
  double crit_path_cycles = 0;

  void add_block(const KernelStats& b) {
    blocks += b.blocks;
    warps += b.warps;
    issue_slots += b.issue_slots;
    dram_transactions += b.dram_transactions;
    global_transactions += b.global_transactions;
    local_transactions += b.local_transactions;
    local_l1_misses += b.local_l1_misses;
    smem_accesses += b.smem_accesses;
    smem_replays += b.smem_replays;
    shfl_ops += b.shfl_ops;
    sync_ops += b.sync_ops;
    divergent_branches += b.divergent_branches;
    crit_path_cycles += b.crit_path_cycles;  // averaged later
  }
};

/// Timing breakdown returned alongside the headline seconds.
struct TimingBreakdown {
  double seconds = 0;
  double waves = 0;
  double t_issue_cycles = 0;  // per wave
  double t_dram_cycles = 0;
  double t_smem_cycles = 0;
  double t_crit_cycles = 0;
  const char* bound = "";  // which term dominated
};

class TimingModel {
 public:
  explicit TimingModel(DeviceSpec spec, CostWeights weights = {})
      : spec_(std::move(spec)), weights_(weights) {}

  [[nodiscard]] const DeviceSpec& spec() const { return spec_; }
  [[nodiscard]] const CostWeights& weights() const { return weights_; }

  /// Estimates wall-clock seconds for a launch with the given aggregate
  /// stats and occupancy.
  [[nodiscard]] TimingBreakdown estimate(const KernelStats& stats,
                                         const Occupancy& occ) const;

 private:
  DeviceSpec spec_;
  CostWeights weights_;
};

}  // namespace cudanp::sim
