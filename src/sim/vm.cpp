#include "sim/vm.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "sim/fault.hpp"
#include "sim/sanitizer.hpp"

namespace cudanp::sim::vm {

namespace {

using bytecode::Instr;
using bytecode::MathFn;
using bytecode::Op;
using bytecode::Operand;
using exec::any;
using exec::LaneView;
using exec::Mask;
using exec::Slot;

/// kMath1 dispatch table, indexed by MathFn. The function bodies are the
/// AST walker's eval_call lambdas verbatim, so results are bit-identical.
struct MathEntry {
  double (*fn)(double);
  bool sfu;
};
const MathEntry kMathTable[] = {
    {[](double x) { return std::sqrt(x); }, true},
    {[](double x) { return std::fabs(x); }, false},
    {[](double x) { return std::exp(x); }, true},
    {[](double x) { return std::log(x); }, true},
    {[](double x) { return std::sin(x); }, true},
    {[](double x) { return std::cos(x); }, true},
    {[](double x) { return std::floor(x); }, false},
    {[](double x) { return 1.0 / std::sqrt(x); }, true},
};

class VmExec : public exec::BlockCore {
 public:
  VmExec(const bytecode::Program& program, const DeviceSpec& spec,
         DeviceMemory& mem, const Interpreter::Options& opt,
         const BoundKernel& bound, const LaunchConfig& cfg, Dim3 block_idx,
         int resident_blocks, exec::BlockSanitizer* san,
         std::int64_t flat_block, std::int64_t max_steps)
      : BlockCore(spec, mem, opt, bound, cfg, block_idx, resident_blocks, san,
                  flat_block, max_steps),
        prog_(program),
        regs_(static_cast<std::size_t>(program.num_regs) *
              static_cast<std::size_t>(nlanes_)),
        masks_(static_cast<std::size_t>(program.max_mask_depth) + 1,
               Mask(static_cast<std::size_t>(nlanes_), 0)),
        scratch_(static_cast<std::size_t>(nlanes_), 0),
        iters_(static_cast<std::size_t>(program.max_loop_depth), 0) {}

  KernelStats run() {
    if (opt_.fault && opt_.fault->should_stall(flat_block_)) stall();
    std::fill(masks_[0].begin(), masks_[0].end(), std::uint8_t{1});
    dispatch();
    return collect_stats();
  }

 private:
  /// The execution mask of the innermost active region.
  [[nodiscard]] Mask& cur() { return masks_[static_cast<std::size_t>(mdepth_)]; }

  [[nodiscard]] Value* reg(std::int32_t r) {
    return regs_.data() +
           static_cast<std::size_t>(r) * static_cast<std::size_t>(nlanes_);
  }

  /// Resolves an operand to a zero-copy lane view.
  [[nodiscard]] LaneView src(const Operand& o) {
    switch (o.kind) {
      case Operand::Kind::kReg:
        return LaneView{reg(o.id), Value{}};
      case Operand::Kind::kImm:
        return LaneView{nullptr, o.imm};
      case Operand::Kind::kGeom:
        return LaneView{geom_[o.id].data(), Value{}};
      case Operand::Kind::kUniform:
        return LaneView{nullptr,
                        frame_[static_cast<std::size_t>(o.id)].data[0]};
      case Operand::Kind::kSlotData:
        return LaneView{frame_[static_cast<std::size_t>(o.id)].data.data(),
                        Value{}};
      case Operand::Kind::kNone:
        break;
    }
    return LaneView{};
  }

  [[nodiscard]] const std::string& name_at(std::int32_t n) const {
    return prog_.names[static_cast<std::size_t>(n)];
  }

  /// Clears returned lanes from the current mask; true if it emptied.
  /// Fast path: masks only empty through returns (jumps handle every
  /// other emptying), so an untouched returned_ means nothing to do.
  [[nodiscard]] bool guard_returned() {
    if (!returned_any_) return false;
    Mask& m = cur();
    bool alive = false;
    for (int l = 0; l < nlanes_; ++l) {
      if (returned_[static_cast<std::size_t>(l)])
        m[static_cast<std::size_t>(l)] = 0;
      alive |= m[static_cast<std::size_t>(l)] != 0;
    }
    return !alive;
  }

  void dispatch() {
    const Instr* code = prog_.code.data();
    std::size_t pc = 0;
    for (;;) {
      const Instr& ins = code[pc];
      switch (ins.op) {
        case Op::kHalt:
          return;
        case Op::kGuard:
          if (guard_returned()) {
            pc = static_cast<std::size_t>(ins.target);
            continue;
          }
          break;
        case Op::kStep:
          count_step(ins.loc);
          break;
        case Op::kLeafBegin:
          begin_leaf_stmt();
          break;
        case Op::kLeafEnd:
          end_leaf_stmt();
          break;
        case Op::kCharge:
          charge_issue(cur(), opt_.timing.weights.alu);
          break;
        case Op::kTrap:
          throw SimError(name_at(ins.name));
        case Op::kVarGuard:
          (void)var_read_check(ins.slot, name_at(ins.name), cur(), ins.loc);
          break;
        case Op::kCheckLive:
          (void)slot_at(ins.slot, name_at(ins.name), ins.loc);
          break;
        case Op::kStoreVar:
          store_var(ins.slot, name_at(ins.name), cur(), src(ins.a), ins.loc);
          break;
        case Op::kDeclare:
          (void)declare(*prog_.decls[static_cast<std::size_t>(ins.imm)]);
          break;
        case Op::kDeclInit: {
          const ir::DeclStmt& d =
              *prog_.decls[static_cast<std::size_t>(ins.imm)];
          decl_scalar_init(frame_[static_cast<std::size_t>(d.sim_slot)],
                           d.type.scalar, cur(), src(ins.a));
          break;
        }
        case Op::kDeclFill: {
          const ir::DeclStmt& d =
              *prog_.decls[static_cast<std::size_t>(ins.imm)];
          decl_fill(frame_[static_cast<std::size_t>(d.sim_slot)], d.type,
                    static_cast<std::size_t>(ins.dst), src(ins.a).at(0));
          break;
        }
        case Op::kDeclShadow: {
          const ir::DeclStmt& d =
              *prog_.decls[static_cast<std::size_t>(ins.imm)];
          decl_shadow_all(frame_[static_cast<std::size_t>(d.sim_slot)],
                          d.type);
          break;
        }
        case Op::kMaskLane0: {
          Mask& m = masks_[static_cast<std::size_t>(mdepth_) + 1];
          std::fill(m.begin(), m.end(), std::uint8_t{0});
          m[0] = 1;
          ++mdepth_;
          break;
        }
        case Op::kMaskPop:
          --mdepth_;
          break;
        case Op::kBin:
          do_binop(static_cast<ir::BinOp>(ins.aux), src(ins.a), src(ins.b),
                   cur(), reg(ins.dst), ins.loc);
          break;
        case Op::kCompound:
          do_compound(static_cast<ir::BinOp>(ins.aux), src(ins.a), src(ins.b),
                      cur(), reg(ins.dst), ins.loc);
          break;
        case Op::kUn:
          do_unop(static_cast<ir::UnOp>(ins.aux), src(ins.a), cur(),
                  reg(ins.dst));
          break;
        case Op::kCast:
          do_cast(static_cast<ir::ScalarType>(ins.aux), src(ins.a), cur(),
                  reg(ins.dst));
          break;
        case Op::kSelect:
          do_select(src(ins.a), src(ins.b), src(ins.c), cur(), reg(ins.dst));
          break;
        case Op::kMath1: {
          const MathEntry& m = kMathTable[ins.aux];
          do_unary_math(m.fn, m.sfu, src(ins.a), cur(), reg(ins.dst));
          break;
        }
        case Op::kAbs:
          do_abs(src(ins.a), cur(), reg(ins.dst));
          break;
        case Op::kMath2:
          do_binmath(static_cast<Builtin>(ins.aux), src(ins.a), src(ins.b),
                     cur(), reg(ins.dst));
          break;
        case Op::kSync:
          do_sync(cur(), ins.loc);
          break;
        case Op::kShflGuard:
          if (spec_.sm_version < 30)
            throw SimError("__shfl requires sm_30+ (device is sm_" +
                           std::to_string(spec_.sm_version) + ")");
          break;
        case Op::kShflArgBegin: {
          Mask& broad = masks_[static_cast<std::size_t>(mdepth_) + 1];
          make_broad_mask(cur(), broad);
          ++mdepth_;
          ++shfl_arg_depth_;
          break;
        }
        case Op::kShflArgEnd:
          --shfl_arg_depth_;
          --mdepth_;
          break;
        case Op::kShfl:
          do_shfl(static_cast<Builtin>(ins.aux), name_at(ins.name),
                  src(ins.a), src(ins.b), src(ins.c), cur(), reg(ins.dst),
                  ins.loc, ins.slot,
                  ins.imm >= 0 ? &name_at(static_cast<std::int32_t>(ins.imm))
                               : nullptr);
          break;
        case Op::kFlatten:
          flatten_dim(reg(ins.dst), src(ins.a), ins.imm, ins.aux != 0, cur(),
                      ins.loc);
          break;
        case Op::kBufLoad:
          buffer_access(frame_[static_cast<std::size_t>(ins.slot)],
                        name_at(ins.name), src(ins.a), cur(), nullptr,
                        reg(ins.dst), ins.loc);
          break;
        case Op::kBufStore: {
          LaneView sv = src(ins.b);
          buffer_access(frame_[static_cast<std::size_t>(ins.slot)],
                        name_at(ins.name), src(ins.a), cur(), &sv, nullptr,
                        ins.loc);
          break;
        }
        case Op::kSharedLoad:
          shared_access(frame_[static_cast<std::size_t>(ins.slot)],
                        name_at(ins.name), src(ins.a).vec, cur(), nullptr,
                        reg(ins.dst), ins.loc);
          break;
        case Op::kSharedStore: {
          LaneView sv = src(ins.b);
          shared_access(frame_[static_cast<std::size_t>(ins.slot)],
                        name_at(ins.name), src(ins.a).vec, cur(), &sv,
                        nullptr, ins.loc);
          break;
        }
        case Op::kLocalLoad:
          local_access(frame_[static_cast<std::size_t>(ins.slot)],
                       name_at(ins.name), src(ins.a).vec, cur(), nullptr,
                       reg(ins.dst), ins.loc);
          break;
        case Op::kLocalStore: {
          LaneView sv = src(ins.b);
          local_access(frame_[static_cast<std::size_t>(ins.slot)],
                       name_at(ins.name), src(ins.a).vec, cur(), &sv, nullptr,
                       ins.loc);
          break;
        }
        case Op::kIfSplit: {
          const bool has_else = ins.aux != 0;
          Mask& m = cur();
          Mask& tm =
              masks_[static_cast<std::size_t>(mdepth_) + (has_else ? 2 : 1)];
          Mask& em =
              has_else ? masks_[static_cast<std::size_t>(mdepth_) + 1]
                       : scratch_;
          LaneView c = src(ins.a);
          for (int l = 0; l < nlanes_; ++l) {
            std::size_t i = static_cast<std::size_t>(l);
            bool active = m[i] != 0;
            bool t = active && c.at(i).truthy();
            tm[i] = t ? 1 : 0;
            em[i] = (active && !t) ? 1 : 0;
          }
          for_each_active_warp(m, [&](int, int lo, int hi) {
            bool t = false, e = false;
            for (int l = lo; l < hi; ++l) {
              t |= tm[static_cast<std::size_t>(l)] != 0;
              e |= em[static_cast<std::size_t>(l)] != 0;
            }
            if (t && e) ++divergent_branches_;
          });
          mdepth_ += has_else ? 2 : 1;
          if (!any(tm)) {
            pc = static_cast<std::size_t>(ins.target);
            continue;
          }
          break;
        }
        case Op::kIfElse:
          // Pop the then mask; the else mask underneath becomes current.
          --mdepth_;
          if (!any(cur())) {
            --mdepth_;
            pc = static_cast<std::size_t>(ins.target);
            continue;
          }
          break;
        case Op::kIfEnd:
          --mdepth_;
          break;
        case Op::kLoopEnter:
          masks_[static_cast<std::size_t>(mdepth_) + 1] = cur();
          ++mdepth_;
          loop_stack_.emplace_back(ins.loc, 0);
          iters_[static_cast<std::size_t>(ldepth_++)] = 0;
          break;
        case Op::kLoopBackedge:
          // Back-edges are budgeted so even empty or condition-only spins
          // trip the watchdog.
          count_step(ins.loc);
          ++loop_stack_.back().second;
          break;
        case Op::kMaskAnd: {
          Mask& m = cur();
          LaneView c = src(ins.a);
          for (int l = 0; l < nlanes_; ++l) {
            std::size_t i = static_cast<std::size_t>(l);
            if (m[i] && !c.at(i).truthy()) m[i] = 0;
          }
          break;
        }
        case Op::kLoopCheck:
          if (!any(cur())) {
            pc = static_cast<std::size_t>(ins.target);
            continue;
          }
          if (++iters_[static_cast<std::size_t>(ldepth_ - 1)] >
              opt_.limits.max_loop_iterations)
            throw SimError(std::string(ins.aux ? "while loop" : "loop") +
                           " exceeded max iterations at " + ins.loc.str());
          break;
        case Op::kLoopLatchFor:
          // Lanes that returned inside the body stop iterating.
          if (guard_returned()) {
            pc = static_cast<std::size_t>(ins.target);
            continue;
          }
          break;
        case Op::kClearReturned:
          // The while latch loops back to the condition unconditionally.
          if (returned_any_) {
            Mask& m = cur();
            for (int l = 0; l < nlanes_; ++l)
              if (returned_[static_cast<std::size_t>(l)])
                m[static_cast<std::size_t>(l)] = 0;
          }
          break;
        case Op::kLoopExit:
          --mdepth_;
          loop_stack_.pop_back();
          --ldepth_;
          break;
        case Op::kJump:
          pc = static_cast<std::size_t>(ins.target);
          continue;
        case Op::kReturn: {
          Mask& m = cur();
          for (int l = 0; l < nlanes_; ++l)
            if (m[static_cast<std::size_t>(l)])
              returned_[static_cast<std::size_t>(l)] = 1;
          returned_any_ = true;
          break;
        }
      }
      ++pc;
    }
  }

  const bytecode::Program& prog_;
  /// Virtual registers, lane-major: reg r covers regs_[r*nlanes .. +nlanes).
  std::vector<Value> regs_;
  /// Preallocated mask stack; masks_[mdepth_] is the active mask.
  std::vector<Mask> masks_;
  /// Else-side mask of an else-less if (divergence counting only).
  Mask scratch_;
  /// Per-depth loop iteration counters (the max_loop_iterations valve).
  std::vector<std::int64_t> iters_;
  int mdepth_ = 0;
  int ldepth_ = 0;
  bool returned_any_ = false;
};

}  // namespace

KernelStats run_block(const bytecode::Program& program, const DeviceSpec& spec,
                      DeviceMemory& mem, const Interpreter::Options& opt,
                      const BoundKernel& bound, const LaunchConfig& cfg,
                      Dim3 block_idx, int resident_blocks,
                      exec::BlockSanitizer* san, std::int64_t flat_block,
                      std::int64_t max_steps) {
  VmExec block(program, spec, mem, opt, bound, cfg, block_idx,
               resident_blocks, san, flat_block, max_steps);
  return block.run();
}

}  // namespace cudanp::sim::vm
