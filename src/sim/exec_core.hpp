// Shared per-block execution core for the two kernel engines.
//
// BlockCore owns everything the engines need to behave bit-identically:
// the slot frame, geometry lane caches, per-warp cost charging, the
// watchdog step counter, the sanitizer hooks and every memory-access /
// operator execution path. The AST walker (sim/interpreter.cpp) and the
// bytecode VM (sim/vm.cpp) both derive from it, so every charge, hazard
// report and error message is produced by exactly one piece of code no
// matter which engine runs — the engine-equivalence contract
// (docs/performance.md) is enforced by construction, not by parallel
// maintenance.
//
// This header is an implementation detail of sim/; nothing outside the
// interpreter, the lowering pass and the VM should include it.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "ir/kernel.hpp"
#include "sim/binder.hpp"
#include "sim/interpreter.hpp"
#include "sim/launch.hpp"
#include "sim/memory.hpp"
#include "sim/sanitizer.hpp"
#include "support/diagnostics.hpp"

namespace cudanp::sim::exec {

using Mask = std::vector<std::uint8_t>;
using Lanes = std::vector<Value>;

[[nodiscard]] inline bool any(const Mask& m) {
  for (auto b : m)
    if (b) return true;
  return false;
}

/// Per-variable storage within one block, indexed by the binder's slot id
/// (sim/binder.hpp) in a flat frame vector.
struct Slot {
  ir::Type type;
  /// Register scalars & register/local arrays: per-lane storage
  /// (lane-major: lane * elems + idx). Shared arrays/scalars: one copy.
  Lanes data;
  /// Word offset inside the block's shared or local space (for bank /
  /// coalescing math).
  std::uint64_t base_word = 0;
  bool is_buffer_param = false;
  /// Scalar kernel argument: one shared copy, read-only.
  bool is_uniform_param = false;
  BufferId buffer = 0;
  /// False until the declaration (or param binding) executes; preserves
  /// the old map-absence "use of undeclared variable" semantics now that
  /// every slot exists up front.
  bool live = false;
  /// Sanitizer init bitmap, indexed like `data` (empty when the sanitizer
  /// is off, and for shared / buffer / uniform slots, which are shadowed
  /// elsewhere).
  std::vector<std::uint8_t> shadow;
};

/// Per-block hazard stream. Blocks never touch the shared SanitizerEngine
/// while executing (so the grid can run on several threads); they collect
/// reports locally, in execution order, and Interpreter::run replays the
/// streams through the engine in block-index order afterwards. That
/// replay reproduces the engine's dedupe, total count and error-limit
/// semantics exactly, at every job count.
struct BlockSanitizer {
  /// Options are read-only during execution; buffer shadow bitmaps are
  /// written element-wise, and well-formed kernels touch block-disjoint
  /// elements (like the data buffers themselves).
  SanitizerEngine* engine = nullptr;
  std::vector<HazardReport> reports;
};

/// Per-lane value source: a full lane vector or one broadcast value.
/// The AST engine passes materialized Lanes; the VM passes registers,
/// geometry vectors, live slot storage, or folded immediates without
/// copying.
struct LaneView {
  const Value* vec = nullptr;
  Value splat{};
  [[nodiscard]] Value at(std::size_t l) const { return vec ? vec[l] : splat; }
};

class BlockCore {
 public:
  BlockCore(const DeviceSpec& spec, DeviceMemory& mem,
            const Interpreter::Options& opt, const BoundKernel& bound,
            const LaunchConfig& cfg, Dim3 block_idx, int resident_blocks,
            BlockSanitizer* san, std::int64_t flat_block,
            std::int64_t max_steps);

 protected:
  // ---------------- setup ----------------
  /// Precomputes the 12 builtin geometry vectors once per block, so an
  /// executed threadIdx/blockDim/... reference is a plain vector copy.
  void init_geometry();
  void bind_params();

  // ---------------- cost charging ----------------
  /// Iterates warps that have >= 1 active lane.
  template <typename Fn>
  void for_each_active_warp(const Mask& mask, Fn&& fn) {
    for (int w = 0; w < nwarps_; ++w) {
      int lo = w * spec_.warp_size;
      int hi = std::min(lo + spec_.warp_size, nlanes_);
      bool active = false;
      for (int l = lo; l < hi; ++l) {
        if (mask[static_cast<std::size_t>(l)]) {
          active = true;
          break;
        }
      }
      if (active) fn(w, lo, hi);
    }
  }

  void charge_issue(const Mask& mask, double weight) {
    for_each_active_warp(mask, [&](int w, int, int) {
      warp_issue_[static_cast<std::size_t>(w)] += weight;
    });
  }

  void charge_latency(int warp, double cycles) {
    warp_pending_[static_cast<std::size_t>(warp)] =
        std::max(warp_pending_[static_cast<std::size_t>(warp)], cycles);
  }

  void begin_leaf_stmt() {
    std::fill(warp_pending_.begin(), warp_pending_.end(), 0.0);
  }
  void end_leaf_stmt() {
    for (int w = 0; w < nwarps_; ++w)
      warp_latency_[static_cast<std::size_t>(w)] +=
          warp_pending_[static_cast<std::size_t>(w)];
  }

  /// Folds the per-warp counters into the block's KernelStats; the run()
  /// epilogue shared by both engines.
  [[nodiscard]] KernelStats collect_stats() const;

  // ---------------- watchdog ----------------
  /// Charges one interpreted statement (or loop back-edge) against the
  /// block's step budget and fires the fault-injection hook. Deterministic
  /// per block — the count never depends on job scheduling.
  void count_step(const SourceLoc& loc);

  [[nodiscard]] WatchdogError make_watchdog_error(const SourceLoc& loc) const;

  /// Injected stall (FaultPlan::stall_block): burns budget until the
  /// watchdog trips. A disabled watchdog would hang forever, so that
  /// combination degrades to a plain injected SimError instead.
  [[noreturn]] void stall();

  // ---------------- memory access paths ----------------
  void charge_global(const DeviceBuffer& buf, LaneView idx, const Mask& mask);
  void charge_shared(const Slot& slot, const Value* flat_idx,
                     const Mask& mask);
  void charge_local(const Slot& slot, const Value* elem_idx,
                    const Mask& mask);

  /// Global-buffer element access, charges included. Load when `store` is
  /// null (fills `out`), store otherwise.
  void buffer_access(Slot& slot, const std::string& name, LaneView idx,
                     const Mask& mask, const LaneView* store, Value* out,
                     SourceLoc loc);
  /// Shared-array access on pre-flattened indices; bumps the sanitizer's
  /// access sequence and emits race / uninit reports.
  void shared_access(Slot& slot, const std::string& name, const Value* flat,
                     const Mask& mask, const LaneView* store, Value* out,
                     SourceLoc loc);
  /// Local / register / constant array access on pre-flattened indices
  /// (the charge dispatch on the address space included).
  void local_access(Slot& slot, const std::string& name, const Value* flat,
                    const Mask& mask, const LaneView* store, Value* out,
                    SourceLoc loc);

  /// One dimension of a (possibly multi-dim) index flatten: bounds-checks
  /// active lanes against `dim` and accumulates flat = flat * dim + i
  /// (`first` resets instead). The per-dim ALU charge for d > 0 is the
  /// caller's, matching the AST order (charge, then check).
  void flatten_dim(Value* flat, LaneView idx, std::int64_t dim, bool first,
                   const Mask& mask, SourceLoc loc);

  // ---------------- scalar variable paths ----------------
  /// Everything eval of a scalar VarRef does except materializing values:
  /// liveness / pointer-as-value / array-without-index errors and the
  /// sanitizer's uninit-read check. Returns the live slot so the caller
  /// can read `data` in place (AST copies; VM aliases).
  Slot& var_read_check(std::int32_t slot_id, const std::string& name,
                       const Mask& mask, SourceLoc loc);
  /// Scalar variable assignment target: slot_at + assignability errors +
  /// ALU charge + masked coerced store with shadow marking.
  void store_var(std::int32_t slot_id, const std::string& name,
                 const Mask& mask, LaneView val, SourceLoc loc);
  /// DeclStmt scalar initializer: ALU charge + masked coerced store with
  /// shadow marking into an already-declared slot.
  void decl_scalar_init(Slot& slot, ir::ScalarType to, const Mask& mask,
                        LaneView val);
  /// One brace-initializer element (coerced lane-0 value broadcast into
  /// shared storage or all lanes' element e).
  void decl_fill(Slot& slot, const ir::Type& type, std::size_t e, Value raw);
  /// Brace initializers zero-fill the tail in C, so the whole array is
  /// marked initialized for the sanitizer (no-op when it is off).
  void decl_shadow_all(Slot& slot, const ir::Type& type);

  // ---------------- operators (charges included) ----------------
  void do_binop(ir::BinOp op, LaneView a, LaneView b, const Mask& mask,
                Value* out, SourceLoc loc);
  /// Compound-assignment combine: fixed ALU charge (never the div/mod
  /// weights) + apply, matching the AST's exec_assign.
  void do_compound(ir::BinOp op, LaneView oldv, LaneView rhs,
                   const Mask& mask, Value* out, SourceLoc loc);
  void do_unop(ir::UnOp op, LaneView a, const Mask& mask, Value* out);
  void do_cast(ir::ScalarType to, LaneView a, const Mask& mask, Value* out);
  void do_select(LaneView c, LaneView a, LaneView b, const Mask& mask,
                 Value* out);
  void do_unary_math(double (*fn)(double), bool sfu, LaneView a,
                     const Mask& mask, Value* out);
  void do_abs(LaneView a, const Mask& mask, Value* out);
  /// min / max / fminf / fmaxf / powf.
  void do_binmath(Builtin b, LaneView x, LaneView y, const Mask& mask,
                  Value* out);

  // ---------------- builtins with shared semantics ----------------
  /// __syncthreads(): counters, charges, barrier bookkeeping.
  void do_sync(const Mask& mask, SourceLoc loc);
  /// Fills `broad` with all lanes of every warp active under `mask` (the
  /// mask a shfl's source argument is evaluated under).
  void make_broad_mask(const Mask& mask, Mask& broad);
  /// __shfl family body (after the caller's sm-version / arity checks and
  /// argument evaluation): selection, clamping, hazard reports and the
  /// post-hoc source-lane init check. `var_slot`/`var_name` describe the
  /// first argument when it is a plain variable reference (pass
  /// kSlotUnbound / nullptr otherwise). `var` must cover every lane of
  /// every active warp (it was evaluated under the broadened mask).
  void do_shfl(Builtin b, const std::string& callee, LaneView var,
               LaneView sel, LaneView width, const Mask& mask, Value* out,
               SourceLoc loc, std::int32_t var_slot,
               const std::string* var_name);

  // ---------------- sanitizer hooks ----------------
  /// Shadow state for one shared-memory word.
  struct SharedShadow {
    bool init = false;
    // Same-vector-access write tracking (lockstep-mode races).
    std::uint64_t write_access = 0;
    int writer_lane = -1;
    Value written;
    // Barrier-interval tracking (portable-mode races). A warp's barrier
    // generation is its arrival count; warp id -1 = none, -2 = several.
    std::uint64_t write_gen = 0;
    int writer_warp = -1;
    std::uint64_t read_gen = 0;
    int reader_warp = -1;
    SourceLoc write_loc;
  };

  [[nodiscard]] bool portable_races() const;

  [[nodiscard]] static bool value_eq(Value a, Value b) {
    if (a.tag != b.tag) return a.as_f() == b.as_f();
    return a.is_float() ? a.f == b.f : a.i == b.i;
  }

  void san_report(HazardKind kind, SourceLoc loc, int lane, std::string msg);
  void note_shared_write(const Slot& slot, const std::string& name,
                         std::size_t idx, int lane, Value val, SourceLoc loc);
  void note_shared_read(const Slot& slot, const std::string& name,
                        std::size_t idx, int lane, SourceLoc loc);
  /// Kepler's bar.sync counts *warp* arrivals: a warp arrives when >= 1 of
  /// its lanes executes the barrier, so partial masks inside one warp are
  /// fine, but a warp whose live lanes all branch around the barrier never
  /// arrives and the block deadlocks on real hardware.
  void note_barrier(SourceLoc loc, const Mask& mask);

  // ---------------- variable helpers ----------------
  /// Resolves a bound slot id to live storage. Geometry codes land here
  /// only from contexts where a geometry name is invalid (array base,
  /// assignment target) and get the same "undeclared" error the old map
  /// lookup produced.
  Slot& slot_at(std::int32_t s, const std::string& name, SourceLoc loc);

  /// Declares (or re-declares, for loop bodies) a variable.
  Slot& declare(const ir::DeclStmt& d);

  [[nodiscard]] static Value coerce(Value v, ir::ScalarType to);

  [[nodiscard]] std::size_t first_active(const Mask& mask) const {
    for (int l = 0; l < nlanes_; ++l)
      if (mask[static_cast<std::size_t>(l)]) return static_cast<std::size_t>(l);
    return 0;
  }

  /// One operator, op fixed at compile time so every instantiation is a
  /// handful of instructions that inlines into binop_lanes' lane loop.
  /// (A runtime-op switch here defeats inlining: GCC sees one big 19-way
  /// function and emits an out-of-line call per lane.)
  template <ir::BinOp kOp>
  static Value apply_binop(Value a, Value b, SourceLoc loc);

  /// Cold path for the division/modulo diagnostics; out of line so the
  /// string construction doesn't bloat apply_binop's inline body.
  [[noreturn]] static void binop_fail(const char* prefix, SourceLoc loc);

  /// Lane loop for one operator with the op as a compile-time constant,
  /// so the inlined apply_binop collapses to a single case — operator
  /// execution is the hottest path in both engines and must not pay a
  /// 19-way switch per lane.
  template <ir::BinOp kOp>
  void binop_lanes(LaneView a, LaneView b, const Mask& mask, Value* out,
                   SourceLoc loc);

  /// Runtime-op entry: one switch per statement, then binop_lanes.
  void dispatch_binop(ir::BinOp op, LaneView a, LaneView b, const Mask& mask,
                      Value* out, SourceLoc loc);

  static constexpr std::uint64_t kLocalSpaceBase = 1ULL << 40;

  const DeviceSpec& spec_;
  DeviceMemory& mem_;
  const Interpreter::Options& opt_;
  const BoundKernel& bound_;
  const ir::Kernel& kernel_;
  const LaunchConfig& cfg_;
  Dim3 block_idx_;
  std::int64_t flat_block_ = 0;
  std::int64_t max_steps_ = std::numeric_limits<std::int64_t>::max();
  std::int64_t steps_ = 0;
  std::vector<std::pair<SourceLoc, std::int64_t>> loop_stack_;
  int nlanes_;
  int nwarps_;
  L1Cache l1_;

  /// Flat variable frame, indexed by the binder's slot ids.
  std::vector<Slot> frame_;
  /// Precomputed geometry lane vectors (threadIdx.x, ..., gridDim.z).
  Lanes geom_[kGeomCount];
  Mask returned_;
  BlockSanitizer* san_ = nullptr;
  std::unordered_map<std::uint64_t, SharedShadow> smem_shadow_;
  std::vector<std::uint64_t> warp_gen_;  // barrier arrivals per warp
  std::uint64_t access_seq_ = 0;         // one id per shared vector access
  int shfl_arg_depth_ = 0;  // suppress uninit checks under shfl's broad mask
  std::vector<double> warp_issue_;
  std::vector<double> warp_latency_;
  std::vector<double> warp_pending_;
  std::uint64_t smem_word_cursor_ = 0;
  std::uint64_t local_word_cursor_ = 0;

  std::int64_t global_transactions_ = 0;
  std::int64_t local_transactions_ = 0;
  std::int64_t local_l1_misses_ = 0;
  std::int64_t dram_transactions_ = 0;
  std::int64_t smem_accesses_ = 0;
  std::int64_t smem_replays_ = 0;
  std::int64_t shfl_ops_ = 0;
  std::int64_t sync_ops_ = 0;
  std::int64_t divergent_branches_ = 0;
};

// Inline so binop_lanes' per-lane loop folds the whole switch away once
// kOp is a constant; out-of-line these two are ~40% of a kernel's run.

inline Value BlockCore::coerce(Value v, ir::ScalarType to) {
  switch (to) {
    case ir::ScalarType::kFloat: return v.to_f32();
    case ir::ScalarType::kInt:
    case ir::ScalarType::kBool: return Value::of_int(v.as_i());
    case ir::ScalarType::kVoid: return v;
  }
  return v;
}

template <ir::BinOp kOp>
inline Value BlockCore::apply_binop(Value a, Value b, SourceLoc loc) {
  using ir::BinOp;
  if constexpr (kOp == BinOp::kLAnd)
    return Value::of_int(a.truthy() && b.truthy());
  else if constexpr (kOp == BinOp::kLOr)
    return Value::of_int(a.truthy() || b.truthy());
  else if constexpr (kOp == BinOp::kBitAnd)
    return Value::of_int(a.as_i() & b.as_i());
  else if constexpr (kOp == BinOp::kBitOr)
    return Value::of_int(a.as_i() | b.as_i());
  else if constexpr (kOp == BinOp::kBitXor)
    return Value::of_int(a.as_i() ^ b.as_i());
  else if constexpr (kOp == BinOp::kShl)
    return Value::of_int(a.as_i() << b.as_i());
  else if constexpr (kOp == BinOp::kShr)
    return Value::of_int(a.as_i() >> b.as_i());
  else {
    const bool fl = a.is_float() || b.is_float();
    if constexpr (kOp == BinOp::kAdd)
      return fl ? Value::of_float(a.as_f() + b.as_f()).to_f32()
                : Value::of_int(a.i + b.i);
    else if constexpr (kOp == BinOp::kSub)
      return fl ? Value::of_float(a.as_f() - b.as_f()).to_f32()
                : Value::of_int(a.i - b.i);
    else if constexpr (kOp == BinOp::kMul)
      return fl ? Value::of_float(a.as_f() * b.as_f()).to_f32()
                : Value::of_int(a.i * b.i);
    else if constexpr (kOp == BinOp::kDiv) {
      if (fl) return Value::of_float(a.as_f() / b.as_f()).to_f32();
      if (b.i == 0) binop_fail("integer division by zero at ", loc);
      return Value::of_int(a.i / b.i);
    } else if constexpr (kOp == BinOp::kMod) {
      if (fl) binop_fail("operator % requires integers at ", loc);
      if (b.i == 0) binop_fail("modulo by zero at ", loc);
      return Value::of_int(a.i % b.i);
    } else if constexpr (kOp == BinOp::kLt) {
      return Value::of_int(fl ? a.as_f() < b.as_f() : a.i < b.i);
    } else if constexpr (kOp == BinOp::kLe) {
      return Value::of_int(fl ? a.as_f() <= b.as_f() : a.i <= b.i);
    } else if constexpr (kOp == BinOp::kGt) {
      return Value::of_int(fl ? a.as_f() > b.as_f() : a.i > b.i);
    } else if constexpr (kOp == BinOp::kGe) {
      return Value::of_int(fl ? a.as_f() >= b.as_f() : a.i >= b.i);
    } else if constexpr (kOp == BinOp::kEq) {
      return Value::of_int(fl ? a.as_f() == b.as_f() : a.i == b.i);
    } else {
      static_assert(kOp == BinOp::kNe, "unhandled binop");
      return Value::of_int(fl ? a.as_f() != b.as_f() : a.i != b.i);
    }
  }
}

}  // namespace cudanp::sim::exec
