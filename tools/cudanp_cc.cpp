// cudanp-cc: the CUDA-NP source-to-source compiler as a command-line
// tool, mirroring how the paper's Cetus-based compiler is driven.
//
//   cudanp-cc input.cu [options]
//
//   --kernel=<name>       kernel to transform (default: first with pragmas)
//   --tb=<n>              baseline thread-block size (default 32)
//   --slave-size=<n>      slaves per master incl. master (default 4)
//   --np-type=inter|intra warp mapping (default inter)
//   --placement=auto|register|shared|global   local-array re-homing
//   --sm=<n>              target compute capability x10 (default 30)
//   --pad                 pad constant loop counts to slave_size multiples
//   --no-shfl             use shared memory even intra-warp (Fig. 16)
//   --all                 emit every auto-tuner candidate configuration
//   --report              print resource/occupancy report instead of code
//   --preprocess          run the Sec. 3.7 preprocessors (re-roll unrolled
//                         statement runs) before transforming
//   --sanitize            guarded execution: run baseline + every candidate
//                         variant on the simulator under the sanitizer and
//                         cross-check outputs (see docs/sanitizer.md)
//   --error-limit=<n>     stop sanitizing after n distinct hazards (0 = no
//                         limit, default 100)
//   --elems=<n>           synthetic workload problem size for --sanitize
//                         (default 64)
//   --portable-races      flag races that only block-lockstep execution
//                         order hides (compute-sanitizer-style racecheck)
//   --jobs=<n>            host threads simulating thread blocks (default:
//                         CUDANP_JOBS env var, else hardware concurrency;
//                         results are identical at every job count)
//   --watchdog-steps=<n>  per-block interpreted-statement budget before the
//                         execution watchdog cancels a launch (0 = auto:
//                         CUDANP_MAX_STEPS env var, else 2^26; negative
//                         disables the watchdog; see docs/robustness.md)
//   --certify             symbolic equivalence certification (the third
//                         validation leg; see docs/robustness.md
//                         "Certification"): prove every candidate
//                         variant equivalent to the baseline, refute it
//                         with a replayable counterexample, or fall back
//                         to the empirical checks. Refuted variants are
//                         quarantined as proven-wrong (exit 11 when one
//                         is found)
//   --certified-fast-path certified serving (implies --certify): proven
//                         variants skip the per-run sanitized
//                         cross-check and run unguarded for raw speed
//                         (the watchdog still applies)
//   --fallback=baseline   graceful degradation: pick the best candidate
//                         variant that survives the sanitizer + watchdog +
//                         output cross-check, falling back to the baseline
//                         kernel when every candidate is quarantined. The
//                         chosen kernel is always printed; the structured
//                         failure report (JSON) goes to stderr.
//   --batch=<manifest>    resilient batch serving: run every job in the
//                         manifest (one kernel+workload per line; see
//                         src/serve/manifest.hpp) through admission
//                         control, deadlines, retry/backoff and circuit
//                         breakers. The ServiceReport goes to the output
//                         stream (human) and stderr (JSON).
//   --queue-cap=<n>       batch admission queue capacity (default 256)
//   --deadline-ms=<n>     default per-job virtual deadline (batch mode)
//   --retries=<n>         max attempts per job incl. the first (batch)
//   --isolate=none|process  batch crash isolation: "process" runs every
//                         attempt in a sandboxed worker subprocess, so a
//                         natively crashing or wedged job degrades instead
//                         of killing the batch (default none)
//   --worker-mem-mb=<n>   RLIMIT_AS cap per worker in MiB; overruns become
//                         the breaker-eligible "resource-limit" cause
//   --worker-timeout-ms=<n>  supervisor read timeout: a worker that sends
//                         neither heartbeat nor result for this long (real
//                         ms) is declared wedged and killed (default 10000)
//   --heartbeat-ms=<n>    worker heartbeat interval (real ms, default 200).
//                         Validated at parse time against the read timeout:
//                         2 * heartbeat must fit inside --worker-timeout-ms,
//                         otherwise a healthy-but-slow worker would be
//                         declared wedged between beats (usage error)
//   --journal=<file>      write-ahead commit journal: append every job's
//                         outcome durably before it commits, so a killed
//                         batch can be finished with --resume
//   --resume              replay completed jobs from --journal and execute
//                         only the remainder; the final report is
//                         byte-identical to an uninterrupted run
//   --commit-chunk=<n>    jobs executed per execute->journal->commit round
//                         when journaling (bounds how much work a kill can
//                         lose; cannot affect the report; default 16)
//   --worker              (internal) run as an execution worker: serve
//                         attempt frames on stdin/stdout until EOF
//   -o <file>             write output to file (default stdout)
//
// Persistent serving (see docs/robustness.md "Persistent serving"):
//
//   --serve=<socket>      run as a long-lived daemon on an AF_UNIX stream
//                         socket, driving each submitted manifest through
//                         the batch pipeline. Batch flags (--elems, --tb,
//                         --deadline-ms, --retries, --isolate, ...) set the
//                         daemon-wide defaults. SIGTERM/SIGINT begins a
//                         graceful drain; the daemon exits 0 once admitted
//                         requests finished
//   --tenant-quota=<n>    max requests one tenant may have queued+running
//                         (default 4; excess is shed with "tenant-quota")
//   --max-pending=<n>     global pending-request bound (default 64)
//   --drr-quantum=<n>     deficit-round-robin credit per tenant visit, in
//                         jobs (default 8)
//   --session-idle-ms=<n> a client silent this long is reaped (default
//                         30000)
//   --cache-entries=<n>   compile-cache capacity (default 256; 0 disables)
//   --cache-dir=<dir>     persist cache entries across restarts (entries
//                         are checksummed; torn/corrupt ones quarantined)
//   --journal-dir=<dir>   journal each request as req-<fingerprint>.journal
//                         with resume-if-present, making restart idempotent
//   --shared-breakers     share circuit breakers across tenants (off by
//                         default: sharing trades the strict per-client
//                         determinism contract for cross-tenant protection)
//
//   --connect=<socket>    client mode: submit --batch=<manifest> to the
//                         daemon (output identical to a local --batch run)
//   --tenant=<name>       tenant attribution for --connect (default
//                         "default")
//   --status / --healthz  query the daemon's counters / liveness (JSON)
//   --shutdown            ask the daemon to begin a graceful drain
//
// Exit status: 0 on success, 1 on usage errors, 2 on compile errors,
// 3 when --sanitize found hazards or an output mismatch, 4 on simulation
// errors, 5 on internal errors, 6 when --fallback degraded (a candidate
// was quarantined or the baseline was used) or the watchdog cancelled an
// unsanitized run — the output is still a runnable answer, 7 when a
// --batch run completed but not every job succeeded (some jobs were
// degraded to the baseline, shed, drained, or rejected; every job still
// reached a terminal state), 8 when a --batch run completed but only by
// surviving worker crashes or resource-limit kills under
// --isolate=process (crashed-but-completed; takes precedence over 7),
// 9 when --resume was given a journal written for a different batch or
// different options (no report is produced), 10 when a daemon refused a
// --connect request with a structured reject (tenant-quota / queue-full /
// draining / bad-manifest — the request never entered the pipeline),
// 11 when --certify refuted a candidate variant (a replayable
// counterexample proves it diverges from the baseline; takes precedence
// over 3 and 6 — the strongest possible evidence of a transform bug).
#include <cerrno>
#include <cstring>
#include <fstream>
#include <iostream>
#include <limits>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "analysis/resources.hpp"
#include "ir/printer.hpp"
#include "np/compiler.hpp"
#include "np/runner.hpp"
#include "serve/daemon.hpp"
#include "serve/journal.hpp"
#include "serve/manifest.hpp"
#include "serve/service.hpp"
#include "serve/supervisor.hpp"
#include "serve/worker.hpp"
#include "sim/exec_pool.hpp"
#include "support/diagnostics.hpp"
#include "support/string_utils.hpp"
#include "transform/preprocess.hpp"

using namespace cudanp;

namespace {

struct CliOptions {
  std::string input;
  std::string output;
  std::string kernel;
  int tb = 32;
  int slave_size = 4;
  ir::NpType np_type = ir::NpType::kInterWarp;
  transform::LocalPlacement placement = transform::LocalPlacement::kAuto;
  int sm = 30;
  bool pad = false;
  bool no_shfl = false;
  bool all = false;
  bool report = false;
  bool preprocess = false;
  bool sanitize = false;
  bool certify = false;
  bool certified_fast_path = false;
  int error_limit = 100;
  int elems = 64;
  bool portable_races = false;
  int jobs = 0;  // 0 = auto (CUDANP_JOBS env var, else hardware concurrency)
  // Which block engine executes kernels: auto (CUDANP_ENGINE env var,
  // then the VM), the AST walker, the bytecode VM, or cross-checked.
  sim::Engine engine = sim::Engine::kAuto;
  // 0 = auto (CUDANP_MAX_STEPS env var, else the interpreter default);
  // negative disables the watchdog entirely.
  long long watchdog_steps = 0;
  bool fallback = false;  // --fallback=baseline graceful degradation
  std::string batch;      // --batch=<manifest> resilient batch serving
  int queue_cap = 256;
  long long deadline_ms = 0;  // 0 = service default
  int retries = 0;            // 0 = retry policy default
  serve::IsolationMode isolate = serve::IsolationMode::kNone;
  long long worker_mem_mb = 0;      // 0 = uncapped
  int worker_timeout_ms = 10000;    // supervisor read timeout (real ms)
  std::string journal;          // --journal=<file> write-ahead journal
  bool resume = false;          // --resume a killed --journal batch
  int commit_chunk = 16;        // execute->journal->commit round size
  bool worker = false;          // --worker: internal execution-worker mode
  int heartbeat_ms = 200;       // worker heartbeat interval (real ms)

  // Persistent serving.
  std::string serve_socket;     // --serve=<socket>: daemon mode
  std::string connect_socket;   // --connect=<socket>: client mode
  std::string tenant;           // --tenant=<name> (client attribution)
  bool status = false;          // --status: query daemon counters
  bool healthz = false;         // --healthz: query daemon liveness
  bool shutdown = false;        // --shutdown: begin a graceful drain
  int tenant_quota = 4;
  int max_pending = 64;
  int drr_quantum = 8;
  int session_idle_ms = 30000;
  int cache_entries = 256;
  std::string cache_dir;
  std::string journal_dir;
  bool shared_breakers = false;
};

void usage() {
  std::cerr
      << "usage: cudanp-cc <input.cu> [--kernel=<name>] [--tb=<n>]\n"
         "                 [--slave-size=<n>] [--np-type=inter|intra]\n"
         "                 [--placement=auto|register|shared|global]\n"
         "                 [--sm=<n>] [--pad] [--no-shfl] [--all]\n"
         "                 [--report] [--preprocess] [-o <file>]\n"
         "                 [--sanitize] [--error-limit=<n>] [--elems=<n>]\n"
         "                 [--portable-races] [--jobs=<n>]\n"
         "                 [--engine=auto|ast|vm|check]\n"
         "                 [--watchdog-steps=<n>] [--fallback=baseline]\n"
         "                 [--certify] [--certified-fast-path]\n"
         "       cudanp-cc --batch=<manifest> [--jobs=<n>]\n"
         "                 [--queue-cap=<n>] [--deadline-ms=<n>]\n"
         "                 [--retries=<n>] [--elems=<n>] [--tb=<n>]\n"
         "                 [--watchdog-steps=<n>] [--isolate=none|process]\n"
         "                 [--worker-mem-mb=<n>] [--worker-timeout-ms=<n>]\n"
         "                 [--journal=<file>] [--resume]\n"
         "                 [--commit-chunk=<n>] [--heartbeat-ms=<n>]\n"
         "                 [--certify] [--certified-fast-path]\n"
         "                 [-o <file>]\n"
         "       cudanp-cc --serve=<socket> [batch flags]\n"
         "                 [--tenant-quota=<n>] [--max-pending=<n>]\n"
         "                 [--drr-quantum=<n>] [--session-idle-ms=<n>]\n"
         "                 [--cache-entries=<n>] [--cache-dir=<dir>]\n"
         "                 [--journal-dir=<dir>] [--shared-breakers]\n"
         "       cudanp-cc --connect=<socket> --batch=<manifest>\n"
         "                 [--tenant=<name>] [-o <file>]\n"
         "       cudanp-cc --connect=<socket> --status|--healthz|--shutdown\n";
}

/// Checked numeric flag: "--tb=32x", "--tb=", and out-of-range values
/// are usage errors instead of silently atoi-ing to 0 or a prefix.
bool parse_flag_i64(const char* flag, const char* text, long long min,
                    long long max, long long* out) {
  auto v = parse_i64(text, min, max);
  if (!v) {
    std::cerr << "cudanp-cc: bad value for " << flag << ": '" << text
              << "' (expected integer in [" << min << ", " << max << "])\n";
    return false;
  }
  *out = *v;
  return true;
}

bool parse_flag_int(const char* flag, const char* text, int min, int max,
                    int* out) {
  long long v = 0;
  if (!parse_flag_i64(flag, text, min, max, &v)) return false;
  *out = static_cast<int>(v);
  return true;
}

std::optional<CliOptions> parse_args(int argc, char** argv) {
  CliOptions opt;
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    auto value = [&](const char* prefix) -> const char* {
      return a.c_str() + std::strlen(prefix);
    };
    if (a.rfind("--kernel=", 0) == 0) {
      opt.kernel = value("--kernel=");
    } else if (a.rfind("--tb=", 0) == 0) {
      if (!parse_flag_int("--tb", value("--tb="), 1, 1024, &opt.tb))
        return std::nullopt;
    } else if (a.rfind("--slave-size=", 0) == 0) {
      if (!parse_flag_int("--slave-size", value("--slave-size="), 1, 1024,
                          &opt.slave_size))
        return std::nullopt;
    } else if (a.rfind("--np-type=", 0) == 0) {
      std::string v = value("--np-type=");
      if (v == "inter") opt.np_type = ir::NpType::kInterWarp;
      else if (v == "intra") opt.np_type = ir::NpType::kIntraWarp;
      else return std::nullopt;
    } else if (a.rfind("--placement=", 0) == 0) {
      std::string v = value("--placement=");
      if (v == "auto") opt.placement = transform::LocalPlacement::kAuto;
      else if (v == "register")
        opt.placement = transform::LocalPlacement::kRegister;
      else if (v == "shared")
        opt.placement = transform::LocalPlacement::kShared;
      else if (v == "global")
        opt.placement = transform::LocalPlacement::kGlobal;
      else return std::nullopt;
    } else if (a.rfind("--sm=", 0) == 0) {
      if (!parse_flag_int("--sm", value("--sm="), 10, 999, &opt.sm))
        return std::nullopt;
    } else if (a == "--pad") {
      opt.pad = true;
    } else if (a == "--no-shfl") {
      opt.no_shfl = true;
    } else if (a == "--all") {
      opt.all = true;
    } else if (a == "--report") {
      opt.report = true;
    } else if (a == "--preprocess") {
      opt.preprocess = true;
    } else if (a == "--sanitize") {
      opt.sanitize = true;
    } else if (a == "--certify") {
      opt.certify = true;
    } else if (a == "--certified-fast-path") {
      opt.certify = true;
      opt.certified_fast_path = true;
    } else if (a.rfind("--error-limit=", 0) == 0) {
      if (!parse_flag_int("--error-limit", value("--error-limit="), 0,
                          1 << 30, &opt.error_limit))
        return std::nullopt;
    } else if (a.rfind("--elems=", 0) == 0) {
      if (!parse_flag_int("--elems", value("--elems="), 1, 1 << 20,
                          &opt.elems))
        return std::nullopt;
    } else if (a == "--portable-races") {
      opt.portable_races = true;
    } else if (a.rfind("--engine=", 0) == 0) {
      std::string v = value("--engine=");
      if (v == "auto") opt.engine = sim::Engine::kAuto;
      else if (v == "ast") opt.engine = sim::Engine::kAst;
      else if (v == "vm") opt.engine = sim::Engine::kVm;
      else if (v == "check") opt.engine = sim::Engine::kCheck;
      else return std::nullopt;
    } else if (a.rfind("--jobs=", 0) == 0) {
      if (!parse_flag_int("--jobs", value("--jobs="), 1,
                          sim::ExecPool::kMaxWorkers, &opt.jobs))
        return std::nullopt;
    } else if (a.rfind("--watchdog-steps=", 0) == 0) {
      if (!parse_flag_i64("--watchdog-steps", value("--watchdog-steps="),
                          std::numeric_limits<long long>::min(),
                          std::numeric_limits<long long>::max(),
                          &opt.watchdog_steps))
        return std::nullopt;
    } else if (a.rfind("--batch=", 0) == 0) {
      opt.batch = value("--batch=");
      if (opt.batch.empty()) return std::nullopt;
    } else if (a.rfind("--queue-cap=", 0) == 0) {
      if (!parse_flag_int("--queue-cap", value("--queue-cap="), 1, 1 << 20,
                          &opt.queue_cap))
        return std::nullopt;
    } else if (a.rfind("--deadline-ms=", 0) == 0) {
      if (!parse_flag_i64("--deadline-ms", value("--deadline-ms="), 1,
                          std::numeric_limits<long long>::max() / 2,
                          &opt.deadline_ms))
        return std::nullopt;
    } else if (a.rfind("--retries=", 0) == 0) {
      if (!parse_flag_int("--retries", value("--retries="), 1, 1000,
                          &opt.retries))
        return std::nullopt;
    } else if (a.rfind("--isolate=", 0) == 0) {
      auto mode = serve::isolation_mode_from_string(value("--isolate="));
      if (!mode) {
        std::cerr << "cudanp-cc: bad value for --isolate: '"
                  << value("--isolate=") << "' (expected none|process)\n";
        return std::nullopt;
      }
      opt.isolate = *mode;
    } else if (a.rfind("--worker-mem-mb=", 0) == 0) {
      if (!parse_flag_i64("--worker-mem-mb", value("--worker-mem-mb="), 1,
                          1LL << 20, &opt.worker_mem_mb))
        return std::nullopt;
    } else if (a.rfind("--worker-timeout-ms=", 0) == 0) {
      if (!parse_flag_int("--worker-timeout-ms",
                          value("--worker-timeout-ms="), 1, 1 << 30,
                          &opt.worker_timeout_ms))
        return std::nullopt;
    } else if (a.rfind("--journal=", 0) == 0) {
      opt.journal = value("--journal=");
      if (opt.journal.empty()) return std::nullopt;
    } else if (a == "--resume") {
      opt.resume = true;
    } else if (a.rfind("--commit-chunk=", 0) == 0) {
      if (!parse_flag_int("--commit-chunk", value("--commit-chunk="), 1,
                          1 << 20, &opt.commit_chunk))
        return std::nullopt;
    } else if (a == "--worker") {
      opt.worker = true;
    } else if (a.rfind("--heartbeat-ms=", 0) == 0) {
      if (!parse_flag_int("--heartbeat-ms", value("--heartbeat-ms="), 1,
                          1 << 30, &opt.heartbeat_ms))
        return std::nullopt;
    } else if (a.rfind("--serve=", 0) == 0) {
      opt.serve_socket = value("--serve=");
      if (opt.serve_socket.empty()) return std::nullopt;
    } else if (a.rfind("--connect=", 0) == 0) {
      opt.connect_socket = value("--connect=");
      if (opt.connect_socket.empty()) return std::nullopt;
    } else if (a.rfind("--tenant=", 0) == 0) {
      opt.tenant = value("--tenant=");
    } else if (a == "--status") {
      opt.status = true;
    } else if (a == "--healthz") {
      opt.healthz = true;
    } else if (a == "--shutdown") {
      opt.shutdown = true;
    } else if (a.rfind("--tenant-quota=", 0) == 0) {
      if (!parse_flag_int("--tenant-quota", value("--tenant-quota="), 1,
                          1 << 20, &opt.tenant_quota))
        return std::nullopt;
    } else if (a.rfind("--max-pending=", 0) == 0) {
      if (!parse_flag_int("--max-pending", value("--max-pending="), 1,
                          1 << 20, &opt.max_pending))
        return std::nullopt;
    } else if (a.rfind("--drr-quantum=", 0) == 0) {
      if (!parse_flag_int("--drr-quantum", value("--drr-quantum="), 1,
                          1 << 20, &opt.drr_quantum))
        return std::nullopt;
    } else if (a.rfind("--session-idle-ms=", 0) == 0) {
      if (!parse_flag_int("--session-idle-ms",
                          value("--session-idle-ms="), 1, 1 << 30,
                          &opt.session_idle_ms))
        return std::nullopt;
    } else if (a.rfind("--cache-entries=", 0) == 0) {
      if (!parse_flag_int("--cache-entries", value("--cache-entries="), 0,
                          1 << 20, &opt.cache_entries))
        return std::nullopt;
    } else if (a.rfind("--cache-dir=", 0) == 0) {
      opt.cache_dir = value("--cache-dir=");
      if (opt.cache_dir.empty()) return std::nullopt;
    } else if (a.rfind("--journal-dir=", 0) == 0) {
      opt.journal_dir = value("--journal-dir=");
      if (opt.journal_dir.empty()) return std::nullopt;
    } else if (a == "--shared-breakers") {
      opt.shared_breakers = true;
    } else if (a.rfind("--fallback=", 0) == 0) {
      std::string v = value("--fallback=");
      if (v != "baseline") return std::nullopt;
      opt.fallback = true;
    } else if (a == "-o") {
      if (++i >= argc) return std::nullopt;
      opt.output = argv[i];
    } else if (a == "--help" || a == "-h") {
      usage();
      std::exit(0);
    } else if (!a.empty() && a[0] == '-') {
      std::cerr << "unknown option: " << a << "\n";
      return std::nullopt;
    } else if (opt.input.empty()) {
      opt.input = a;
    } else {
      return std::nullopt;
    }
  }
  // The heartbeat must fit (twice) inside the supervisor's read
  // timeout, or a healthy worker would be declared wedged between
  // beats. Caught at parse time with a structured message, not at the
  // first spurious kill.
  if (2LL * opt.heartbeat_ms > opt.worker_timeout_ms) {
    std::cerr << "cudanp-cc: --heartbeat-ms=" << opt.heartbeat_ms
              << " must satisfy 2*heartbeat <= --worker-timeout-ms="
              << opt.worker_timeout_ms
              << " (a healthy worker would be declared wedged between "
                 "beats)\n";
    return std::nullopt;
  }
  // Worker mode serves frames on stdin/stdout; batch mode takes its
  // inputs from the manifest; every other mode needs exactly one source
  // file.
  if (opt.worker) {
    if (!opt.input.empty() || !opt.batch.empty()) return std::nullopt;
    return opt;
  }
  if (!opt.serve_socket.empty()) {
    if (!opt.input.empty() || !opt.batch.empty() ||
        !opt.connect_socket.empty())
      return std::nullopt;
    return opt;
  }
  if (opt.status || opt.healthz || opt.shutdown) {
    if (opt.connect_socket.empty()) {
      std::cerr << "cudanp-cc: --status/--healthz/--shutdown require "
                   "--connect=<socket>\n";
      return std::nullopt;
    }
    if (!opt.input.empty() || !opt.batch.empty()) return std::nullopt;
    return opt;
  }
  if (!opt.connect_socket.empty()) {
    if (opt.batch.empty() || !opt.input.empty()) {
      std::cerr << "cudanp-cc: --connect requires --batch=<manifest> "
                   "(or --status/--healthz/--shutdown)\n";
      return std::nullopt;
    }
    return opt;
  }
  if (opt.resume && opt.journal.empty()) {
    std::cerr << "cudanp-cc: --resume requires --journal=<file>\n";
    return std::nullopt;
  }
  if (opt.batch.empty() && opt.input.empty()) return std::nullopt;
  if (!opt.batch.empty() && !opt.input.empty()) return std::nullopt;
  return opt;
}

const ir::Kernel* pick_kernel(const ir::Program& program,
                              const std::string& name, bool any_fallback) {
  if (!name.empty()) return program.find_kernel(name);
  for (const auto& k : program.kernels)
    if (k->parallel_loop_count() > 0) return k.get();
  if (any_fallback && !program.kernels.empty())
    return program.kernels.front().get();
  return nullptr;
}

void print_report(std::ostream& os, const ir::Kernel& kernel,
                  const transform::TransformResult* variant,
                  const sim::DeviceSpec& spec, int threads_per_block) {
  const ir::Kernel& k = variant ? *variant->kernel : kernel;
  auto res = analysis::estimate_resources(k, spec);
  auto occ = sim::compute_occupancy(spec, threads_per_block, res.usage);
  os << "kernel " << k.name << ":\n"
     << "  threads/block:   " << threads_per_block << "\n"
     << "  registers:       ~" << res.usage.registers_per_thread
     << " per thread (raw estimate " << res.estimated_registers_raw << ")\n"
     << "  shared memory:   " << res.usage.shared_mem_per_block
     << " B per block\n"
     << "  local memory:    " << res.usage.local_mem_per_thread
     << " B per thread\n"
     << "  occupancy:       " << occ.blocks_per_smx << " blocks ("
     << occ.active_warps << " warps) per SMX, " << occ.limiting_factor
     << "-limited\n";
  if (variant) {
    for (const auto& [arr, placement] : variant->placements)
      os << "  local array:     " << arr << " -> "
         << transform::to_string(placement) << "\n";
    for (const auto& extra : variant->extra_buffers)
      os << "  extra buffer:    " << extra.param_name << " ("
         << extra.elems_per_block << " elems per block)\n";
  }
}

}  // namespace

/// --batch mode: load the manifest, run every job through the resilient
/// batch service, and report. Exit 0 only when every job succeeded
/// outright; 7 when the batch completed but some jobs retried into
/// success is still 0 — only degraded/rejected/shed outcomes flip to 7;
/// 8 (precedence over 7) when completion required surviving worker
/// crashes or resource-limit kills under --isolate=process.
serve::ManifestDefaults manifest_defaults_from_cli(const CliOptions& opt) {
  serve::ManifestDefaults defaults;
  defaults.elems = opt.elems;
  defaults.tb = opt.tb;
  defaults.deadline_ms = opt.deadline_ms;
  defaults.max_attempts = opt.retries;
  defaults.watchdog_steps = opt.watchdog_steps;
  return defaults;
}

/// Batch flags -> ServiceOptions; shared by --batch and --serve (the
/// daemon's service template), so the two modes run identical pipelines.
serve::ServiceOptions service_options_from_cli(const CliOptions& opt) {
  serve::ServiceOptions sopts;
  sopts.queue_capacity = opt.queue_cap;
  sopts.jobs = opt.jobs;
  if (opt.deadline_ms > 0) sopts.default_deadline_ms = opt.deadline_ms;
  if (opt.retries > 0) sopts.retry.max_attempts = opt.retries;
  sopts.sanitizer.error_limit = static_cast<std::size_t>(opt.error_limit);
  sopts.sanitizer.race_mode = opt.portable_races
                                  ? sim::SanitizerEngine::RaceMode::kPortable
                                  : sim::SanitizerEngine::RaceMode::kLockstep;
  sopts.isolate = opt.isolate;
  sopts.worker_mem_mb = opt.worker_mem_mb;
  sopts.worker_read_timeout_ms = opt.worker_timeout_ms;
  sopts.worker_heartbeat_ms = opt.heartbeat_ms;
  sopts.commit_chunk = opt.commit_chunk;
  sopts.certify = opt.certify;
  sopts.certified_fast_path = opt.certified_fast_path;
  return sopts;
}

int run_batch(const CliOptions& opt, std::ostream& os) {
  serve::ManifestDefaults defaults = manifest_defaults_from_cli(opt);

  std::string error;
  std::vector<serve::JobSpec> jobs =
      serve::load_manifest(opt.batch, defaults, &error);
  if (jobs.empty()) {
    std::cerr << "cudanp-cc: " << opt.batch << ": "
              << (error.empty() ? "empty manifest" : error) << "\n";
    return 1;
  }

  serve::ServiceOptions sopts = service_options_from_cli(opt);
  sopts.journal_path = opt.journal;
  sopts.resume = opt.resume;

  auto spec = sim::DeviceSpec::gtx680();
  spec.sm_version = opt.sm;
  serve::BatchService service(spec, sopts);
  serve::ServiceReport report = service.run(jobs);
  os << report.str();
  std::cerr << report.json() << "\n";
  // Crashed-but-completed takes precedence: the batch finished, but only
  // because the sandbox absorbed worker deaths.
  if (report.crashes > 0 || report.resource_limited > 0) return 8;
  return report.all_succeeded() ? 0 : 7;
}

/// --serve mode: run the persistent daemon until a graceful drain.
int run_serve(const CliOptions& opt) {
  serve::DaemonOptions dopt;
  dopt.socket_path = opt.serve_socket;
  dopt.service = service_options_from_cli(opt);
  dopt.defaults = manifest_defaults_from_cli(opt);
  dopt.spec = sim::DeviceSpec::gtx680();
  dopt.spec.sm_version = opt.sm;
  dopt.tenant_quota = opt.tenant_quota;
  dopt.max_pending = opt.max_pending;
  dopt.drr_quantum = opt.drr_quantum;
  dopt.session_idle_ms = opt.session_idle_ms;
  dopt.cache_entries = opt.cache_entries;
  dopt.cache_dir = opt.cache_dir;
  dopt.journal_dir = opt.journal_dir;
  dopt.shared_breakers = opt.shared_breakers;

  serve::ServeDaemon daemon(std::move(dopt));
  std::string error;
  if (!daemon.start(&error)) {
    std::cerr << "cudanp-cc: " << error << "\n";
    return 1;
  }
  std::cerr << "cudanp-cc: serving on " << opt.serve_socket << "\n";
  return daemon.serve();
}

/// --connect mode: one request against a running daemon. Submissions
/// re-emit the daemon's report verbatim (byte-identical to --batch);
/// structured rejects exit 10.
int run_client(const CliOptions& opt, std::ostream& os) {
  int fd = serve::connect_unix(opt.connect_socket);
  if (fd < 0) {
    std::cerr << "cudanp-cc: cannot connect to " << opt.connect_socket
              << ": " << std::strerror(errno) << "\n";
    return 1;
  }
  struct FdCloser {
    int fd;
    ~FdCloser() { ::close(fd); }
  } closer{fd};

  if (opt.status || opt.healthz || opt.shutdown) {
    bool ok;
    if (opt.shutdown)
      ok = serve::write_frame(fd, serve::kFrameShutdown, "");
    else
      ok = serve::write_frame(fd, serve::kFrameStatus,
                              opt.healthz ? "healthz" : "status");
    serve::Frame f;
    if (!ok ||
        serve::read_frame(fd, &f, -1) != serve::ReadStatus::kOk ||
        f.type != serve::kFrameStatusReply) {
      std::cerr << "cudanp-cc: no reply from daemon\n";
      return 1;
    }
    os << f.payload << "\n";
    return 0;
  }

  std::ifstream in(opt.batch);
  if (!in) {
    std::cerr << "cudanp-cc: cannot open " << opt.batch << "\n";
    return 1;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  serve::SubmitRequest req;
  req.tenant = opt.tenant;
  req.manifest = buffer.str();
  auto slash = opt.batch.find_last_of('/');
  req.base_dir = slash == std::string::npos ? std::string()
                                            : opt.batch.substr(0, slash);

  if (!serve::write_frame(fd, serve::kFrameSubmit, req.json())) {
    std::cerr << "cudanp-cc: cannot submit to daemon\n";
    return 1;
  }
  serve::Frame f;
  if (serve::read_frame(fd, &f, -1) != serve::ReadStatus::kOk) {
    std::cerr << "cudanp-cc: daemon closed the connection\n";
    return 1;
  }
  if (f.type == serve::kFrameReject) {
    auto rej = serve::RejectReply::from_json(f.payload);
    std::cerr << "cudanp-cc: rejected: "
              << (rej ? rej->cause : std::string("malformed-reject"));
    if (rej && !rej->detail.empty()) std::cerr << " (" << rej->detail << ")";
    std::cerr << "\n";
    return 10;
  }
  if (f.type != serve::kFrameReport) {
    std::cerr << "cudanp-cc: unexpected reply frame from daemon\n";
    return 1;
  }
  auto reply = serve::SubmitReply::from_json(f.payload);
  if (!reply) {
    std::cerr << "cudanp-cc: malformed report from daemon\n";
    return 1;
  }
  // Same renderings, same exit-code policy as a local --batch run.
  os << reply->report_text;
  std::cerr << reply->report_json << "\n";
  auto report = serve::ServiceReport::from_json(reply->report_json);
  if (!report) return 5;
  if (report->crashes > 0 || report->resource_limited > 0) return 8;
  return report->all_succeeded() ? 0 : 7;
}

int main(int argc, char** argv) {
  auto opt = parse_args(argc, argv);
  if (!opt) {
    usage();
    return 1;
  }

  if (opt->worker) {
    // Execution worker: serve attempt frames on stdin/stdout until the
    // supervisor closes the pipe. Crashes here are the whole point —
    // the supervisor contains them.
    return serve::run_worker_loop(STDIN_FILENO, STDOUT_FILENO,
                                  opt->worker_mem_mb);
  }

  if (!opt->serve_socket.empty()) {
    try {
      return run_serve(*opt);
    } catch (const std::exception& e) {
      std::cerr << "cudanp-cc: internal error: " << e.what() << "\n";
      return 5;
    }
  }

  if (!opt->connect_socket.empty()) {
    std::ofstream client_file;
    std::ostream* cos = &std::cout;
    if (!opt->output.empty()) {
      client_file.open(opt->output);
      if (!client_file) {
        std::cerr << "cudanp-cc: cannot write " << opt->output << "\n";
        return 1;
      }
      cos = &client_file;
    }
    try {
      return run_client(*opt, *cos);
    } catch (const std::exception& e) {
      std::cerr << "cudanp-cc: internal error: " << e.what() << "\n";
      return 5;
    }
  }

  if (!opt->batch.empty()) {
    std::ofstream batch_file;
    std::ostream* bos = &std::cout;
    if (!opt->output.empty()) {
      batch_file.open(opt->output);
      if (!batch_file) {
        std::cerr << "cudanp-cc: cannot write " << opt->output << "\n";
        return 1;
      }
      bos = &batch_file;
    }
    // Signal exit (SIGINT/SIGTERM) must not leak worker processes or
    // half-written journal segments.
    serve::cleanup::install_signal_handlers();
    try {
      return run_batch(*opt, *bos);
    } catch (const serve::ResumeMismatchError& e) {
      std::cerr << "cudanp-cc: " << e.what() << "\n";
      return 9;
    } catch (const std::exception& e) {
      std::cerr << "cudanp-cc: internal error: " << e.what() << "\n";
      return 5;
    }
  }

  std::ifstream in(opt->input);
  if (!in) {
    std::cerr << "cudanp-cc: cannot open " << opt->input << "\n";
    return 1;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();

  std::ofstream out_file;
  std::ostream* os = &std::cout;
  if (!opt->output.empty()) {
    out_file.open(opt->output);
    if (!out_file) {
      std::cerr << "cudanp-cc: cannot write " << opt->output << "\n";
      return 1;
    }
    os = &out_file;
  }

  try {
    auto program = np::NpCompiler::parse(buffer.str());
    const bool guarded = opt->sanitize || opt->fallback || opt->certify;
    const ir::Kernel* kernel = pick_kernel(*program, opt->kernel, guarded);
    if (!kernel) {
      std::cerr << "cudanp-cc: no kernel "
                << (opt->kernel.empty() ? "with #pragma np loops"
                                        : ("named '" + opt->kernel + "'"))
                << " in " << opt->input << "\n";
      return 2;
    }

    std::unique_ptr<ir::Kernel> preprocessed;
    if (opt->preprocess) {
      preprocessed = kernel->clone();
      auto rr = transform::reroll_unrolled_statements(*preprocessed);
      std::cerr << "cudanp-cc: re-rolled " << rr.statements_absorbed
                << " statements into " << rr.loops_created << " loop(s)\n";
      kernel = preprocessed.get();
    }

    auto spec = sim::DeviceSpec::gtx680();
    spec.sm_version = opt->sm;

    if (guarded) {
      sim::SanitizerEngine::Options sopt;
      sopt.error_limit = static_cast<std::size_t>(opt->error_limit);
      sopt.race_mode = opt->portable_races
                           ? sim::SanitizerEngine::RaceMode::kPortable
                           : sim::SanitizerEngine::RaceMode::kLockstep;
      // Unannotated kernel: nothing to transform, just run the baseline
      // under the sanitizer.
      if (kernel->parallel_loop_count() == 0) {
        sim::Interpreter::Options iopt;
        iopt.jobs = opt->jobs;
        iopt.engine = opt->engine;
        iopt.limits.max_steps_per_block = opt->watchdog_steps;
        np::Runner runner(spec, iopt);
        np::Workload w =
            np::make_synthetic_workload(*kernel, opt->elems, opt->tb);
        auto run = runner.execute(
            np::ExecutionRequest::baseline(*kernel, w).sanitized(sopt));
        if (opt->fallback) {
          // Nothing to fall back from: the baseline is the answer either
          // way, but hazards still mean a degraded (exit 6) outcome.
          *os << "// baseline (kernel has no #pragma np loops)\n"
              << ir::print_kernel(*kernel) << "\n";
          std::cerr << run.engine.summary();
          return run.clean() ? 0 : 6;
        }
        *os << run.engine.summary();
        return run.clean() ? 0 : 3;
      }
      std::vector<transform::NpConfig> configs =
          np::NpCompiler::enumerate_configs(*kernel, opt->tb, spec);
      np::ValidationOptions vopt;
      vopt.sanitizer = sopt;
      vopt.interp.jobs = opt->jobs;
      vopt.interp.engine = opt->engine;
      vopt.interp.limits.max_steps_per_block = opt->watchdog_steps;
      vopt.certify = opt->certify;
      vopt.certified_fast_path = opt->certified_fast_path;
      const ir::Kernel& k = *kernel;
      const int n = opt->elems;
      const int tb = opt->tb;
      auto factory = [&k, n, tb] {
        return np::make_synthetic_workload(k, n, tb);
      };
      if (opt->fallback) {
        auto result =
            np::NpCompiler::compile_with_fallback(k, configs, factory, spec,
                                                  vopt);
        const auto& d = result.decision;
        if (d.used_baseline) {
          *os << "// baseline (every NP candidate was quarantined)\n"
              << ir::print_kernel(k) << "\n";
        } else {
          *os << "// " << d.chosen_config << "\n"
              << ir::print_kernel(*result.variant.kernel) << "\n";
        }
        std::cerr << d.json() << "\n";
        for (const auto& f : d.quarantined)
          std::cerr << "cudanp-cc: " << f.str() << "\n";
        // A refutation outranks ordinary degradation: the quarantine is
        // backed by a replayable counterexample, not a single bad run.
        for (const auto& f : d.quarantined)
          if (f.cause == np::FailureCause::kProvenWrong) return 11;
        return d.pristine() ? 0 : 6;
      }
      auto report = np::NpCompiler::validate(k, configs, factory, spec, vopt);
      *os << report.summary() << "\n";
      for (const auto& e : report.entries)
        if (e.verdict == "refuted") return 11;
      return report.all_clean() ? 0 : 3;
    }

    // Report-only mode on an unannotated kernel: describe it and stop.
    if (opt->report && kernel->parallel_loop_count() == 0) {
      print_report(*os, *kernel, nullptr, spec, opt->tb);
      return 0;
    }

    std::vector<transform::NpConfig> configs;
    if (opt->all) {
      configs = np::NpCompiler::enumerate_configs(*kernel, opt->tb, spec);
    } else {
      transform::NpConfig cfg;
      cfg.np_type = opt->np_type;
      cfg.slave_size = opt->slave_size;
      cfg.master_count = opt->tb;
      cfg.placement = opt->placement;
      cfg.sm_version = opt->sm;
      cfg.use_shfl = !opt->no_shfl && opt->sm >= 30;
      cfg.pad_loops = opt->pad;
      configs.push_back(cfg);
    }

    if (opt->report && !opt->all)
      print_report(*os, *kernel, nullptr, spec, opt->tb);

    for (const auto& cfg : configs) {
      auto variant = np::NpCompiler::transform(*kernel, cfg);
      if (opt->report) {
        *os << "\n== " << cfg.describe() << " ==\n";
        print_report(*os, *kernel, &variant, spec, cfg.block_threads());
      } else {
        *os << "// " << cfg.describe() << "\n"
            << ir::print_kernel(*variant.kernel) << "\n";
      }
    }
  } catch (const CompileError& e) {
    std::cerr << "cudanp-cc: " << e.what() << "\n";
    return 2;
  } catch (const sim::WatchdogError& e) {
    std::cerr << "cudanp-cc: " << e.what() << "\n";
    return 6;
  } catch (const SimError& e) {
    std::cerr << "cudanp-cc: simulation error: " << e.what() << "\n";
    return 4;
  } catch (const std::exception& e) {
    std::cerr << "cudanp-cc: internal error: " << e.what() << "\n";
    return 5;
  }
  return 0;
}
