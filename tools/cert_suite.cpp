// cert-suite: symbolic certification sweep over the paper benchmark
// suite — every benchmark, every applicable NP configuration — emitting
// a machine-readable verdict document. This is the CI "cert-smoke"
// artifact: the headline guarantee that every shipped NP variant is
// proven equivalent to its baseline (exactly or modulo float
// reassociation), with any refutation failing the build.
//
//   cert-suite [--scale=<f>] [--bench=<name>] [-o <file>]
//
//   --scale=<f>   workload scale in (0, 1]; default 0.02. Proofs are
//                 per-workload-shape, so a reduced scale proves the same
//                 expression structure at a fraction of the cost.
//   --bench=<n>   restrict to one benchmark (paper name, e.g. TMV)
//   -o <file>     write the verdict JSON to a file (default stdout)
//
// Exit status: 0 when every certified variant is proven or the verdict
// fell back to inconclusive (the empirical checks keep the final say),
// 1 on usage errors, 11 when any variant was REFUTED — a replayable
// counterexample proves a transform bug, matching cudanp-cc --certify.
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "kernels/benchmark.hpp"
#include "np/certifier.hpp"
#include "np/compiler.hpp"
#include "sim/device.hpp"
#include "support/diagnostics.hpp"
#include "support/json.hpp"

using namespace cudanp;

namespace {

struct Options {
  double scale = 0.02;
  std::string bench;
  std::string output;
};

void usage() {
  std::cerr << "usage: cert-suite [--scale=<f>] [--bench=<name>] "
               "[-o <file>]\n";
}

bool parse_args(int argc, char** argv, Options* opt) {
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    if (a.rfind("--scale=", 0) == 0) {
      const char* text = a.c_str() + std::strlen("--scale=");
      char* end = nullptr;
      double v = std::strtod(text, &end);
      if (end == text || *end != '\0' || !(v > 0.0) || v > 1.0) {
        std::cerr << "cert-suite: bad value for --scale: '" << text
                  << "' (expected a number in (0, 1])\n";
        return false;
      }
      opt->scale = v;
    } else if (a.rfind("--bench=", 0) == 0) {
      opt->bench = a.substr(std::strlen("--bench="));
      if (opt->bench.empty()) return false;
    } else if (a == "-o") {
      if (++i >= argc) return false;
      opt->output = argv[i];
    } else if (a == "--help" || a == "-h") {
      usage();
      std::exit(0);
    } else {
      std::cerr << "cert-suite: unknown option: " << a << "\n";
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse_args(argc, argv, &opt)) {
    usage();
    return 1;
  }

  std::ofstream out_file;
  std::ostream* os = &std::cout;
  if (!opt.output.empty()) {
    out_file.open(opt.output);
    if (!out_file) {
      std::cerr << "cert-suite: cannot write " << opt.output << "\n";
      return 1;
    }
    os = &out_file;
  }

  try {
    auto spec = sim::DeviceSpec::gtx680();
    const np::Certifier certifier(spec);

    std::vector<std::unique_ptr<kernels::Benchmark>> suite;
    if (opt.bench.empty()) {
      suite = kernels::make_benchmark_suite(opt.scale);
    } else {
      suite.push_back(kernels::make_benchmark(opt.bench, opt.scale));
    }

    int proven = 0, reassoc = 0, refuted = 0, inconclusive = 0, skipped = 0;
    std::ostringstream body;
    body.precision(17);
    for (std::size_t b = 0; b < suite.size(); ++b) {
      const kernels::Benchmark& bench = *suite[b];
      auto factory = [&bench] { return bench.make_workload(); };
      np::Workload probe = bench.make_workload();
      auto configs = np::NpCompiler::enumerate_configs(
          bench.kernel(), static_cast<int>(probe.launch.block.count()),
          spec);
      if (b) body << ",";
      body << "{\"name\":\"" << json::escape(bench.name())
           << "\",\"kernel\":\"" << json::escape(bench.kernel().name)
           << "\",\"certificates\":[";
      bool first = true;
      for (const auto& cfg : configs) {
        transform::TransformResult variant;
        try {
          variant = np::NpCompiler::transform(bench.kernel(), cfg);
        } catch (const CompileError&) {
          ++skipped;  // configuration legitimately inapplicable
          continue;
        }
        np::Certificate cert =
            certifier.certify_variant(bench.kernel(), variant, factory);
        switch (cert.verdict) {
          case np::Verdict::kProven: ++proven; break;
          case np::Verdict::kProvenModuloReassoc: ++reassoc; break;
          case np::Verdict::kRefuted: ++refuted; break;
          case np::Verdict::kInconclusive: ++inconclusive; break;
        }
        if (cert.verdict == np::Verdict::kRefuted)
          std::cerr << "cert-suite: REFUTED: " << bench.name() << " "
                    << cert.str() << "\n";
        if (!first) body << ",";
        first = false;
        body << cert.json();
      }
      body << "]}";
      std::cerr << "cert-suite: " << bench.name() << " done\n";
    }

    *os << "{\"scale\":" << opt.scale << ",\"proven\":" << proven
        << ",\"proven_modulo_reassoc\":" << reassoc
        << ",\"refuted\":" << refuted
        << ",\"inconclusive\":" << inconclusive
        << ",\"not_applicable\":" << skipped << ",\"benchmarks\":[";
    *os << body.str() << "]}\n";
    std::cerr << "cert-suite: " << proven << " proven, " << reassoc
              << " proven-modulo-reassoc, " << refuted << " refuted, "
              << inconclusive << " inconclusive, " << skipped
              << " not applicable\n";
    if (refuted > 0) return 11;
  } catch (const std::exception& e) {
    std::cerr << "cert-suite: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
